#include "core/fixed_budget.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>

#include "common/normal.h"

namespace pdx {

namespace {

// Builds a BudgetManager when the options ask for dynamic reallocation in
// an allocation policy that supports it (variance-guided / fine); null
// otherwise, which keeps the static paths byte-identical.
std::unique_ptr<BudgetManager> MaybeBudget(const FixedBudgetOptions& options,
                                           size_t k,
                                           const std::vector<uint64_t>& pops) {
  if (options.budget_policy != BudgetPolicy::kDynamic || k < 2) return nullptr;
  if (options.allocation != AllocationPolicy::kVarianceGuided &&
      options.allocation != AllocationPolicy::kFinePerTemplate) {
    return nullptr;
  }
  PDX_CHECK_MSG(options.bounds != nullptr,
                "BudgetPolicy::kDynamic requires FixedBudgetOptions::bounds");
  const uint64_t N = std::accumulate(pops.begin(), pops.end(), uint64_t{0});
  // Fixed-budget runs emit no trace events by contract; the budget
  // counters surface on FixedBudgetResult instead.
  return std::make_unique<BudgetManager>(k, N, options.bounds,
                                         options.budget_model, nullptr);
}

// Splits the single-stratum stratification into one stratum per template.
void MakeFineStrata(Stratification* strat) {
  while (true) {
    bool split_any = false;
    for (uint32_t h = 0; h < strat->num_strata(); ++h) {
      const std::vector<TemplateId>& members = strat->TemplatesOf(h);
      if (members.size() > 1) {
        strat->Split(h, {members.front()});
        split_any = true;
        break;
      }
    }
    if (!split_any) return;
  }
}

// Lowest estimate among still-active configurations: a dominance-
// eliminated configuration is proven non-best by its envelope even when
// its (partial-sample) estimate happens to undercut the winner's.
ConfigId ArgMin(const std::vector<double>& estimates,
                const std::vector<bool>& active) {
  ConfigId best = 0;
  double best_est = std::numeric_limits<double>::infinity();
  for (ConfigId c = 0; c < estimates.size(); ++c) {
    if (!active[c]) continue;
    if (estimates[c] < best_est) {
      best_est = estimates[c];
      best = c;
    }
  }
  return best;
}

FixedBudgetResult RunDeltaFixed(CostSource* source, uint64_t query_budget,
                                const FixedBudgetOptions& options, Rng* rng) {
  const size_t k = source->num_configs();
  const size_t T = source->num_templates();
  const uint64_t calls_before = source->num_calls();
  std::vector<uint64_t> pops = TemplatePopulationsOf(*source);

  Stratification strat(pops);
  if (options.allocation == AllocationPolicy::kEqualPerTemplate ||
      options.allocation == AllocationPolicy::kFinePerTemplate) {
    MakeFineStrata(&strat);
  }
  StratifiedSamplePool pool(*source, rng);
  DeltaEstimator est(k, T, pops);
  std::vector<bool> active(k, true);
  std::vector<double> overheads =
      options.overhead_aware ? PerTemplateOverheads(*source, pops)
                             : std::vector<double>();

  // Hot-loop buffers, allocated once per run (the estimator no-allocation
  // rule). Under the static policy every sweep covers all k configurations
  // in ascending order — the scalar visit order; the dynamic policy prices
  // only the still-active ones (dominated configurations need no calls).
  std::unique_ptr<BudgetManager> budget = MaybeBudget(options, k, pops);
  EstimatorScratch scratch;
  std::vector<double> estimates_buf(k, 0.0);
  std::vector<double> diffs_buf(k, 0.0);
  std::vector<double> vars_buf(k, 0.0);
  std::vector<double> costs_buf(k, 0.0);
  std::vector<double> batch_vals(k, 0.0);
  std::vector<double> uncert_vals(k, 0.0);
  std::vector<double> pair_prcs_zero(k, 0.0);
  std::vector<ConfigId> all_ids(k);
  std::vector<ConfigId> batch_ids;
  batch_ids.reserve(k);
  for (ConfigId c = 0; c < k; ++c) all_ids[c] = c;

  auto evaluate = [&](QueryId q) {
    if (!budget) {
      source->CostAcross(q, all_ids, costs_buf);
      est.Add(q, source->TemplateOf(q), costs_buf);
      return;
    }
    batch_ids.clear();
    for (ConfigId c = 0; c < k; ++c) {
      if (active[c]) batch_ids.push_back(c);
    }
    std::fill(costs_buf.begin(), costs_buf.end(),
              std::numeric_limits<double>::quiet_NaN());
    std::span<double> vals(batch_vals.data(), batch_ids.size());
    source->CostAcross(q, batch_ids, vals);
    for (size_t i = 0; i < batch_ids.size(); ++i) {
      costs_buf[batch_ids[i]] = vals[i];
    }
    // Degraded cells (a fault-tolerant source) must enter the envelope as
    // interval mass, never as exact costs.
    std::span<double> uncerts(uncert_vals.data(), batch_ids.size());
    source->CostUncertaintyAcross(q, batch_ids, uncerts);
    est.Add(q, source->TemplateOf(q), costs_buf);
    for (size_t i = 0; i < batch_ids.size(); ++i) {
      budget->ObserveSample(q, batch_ids[i], vals[i], uncerts[i]);
    }
  };

  uint64_t drawn = 0;
  auto draw_from = [&](uint32_t h) {
    std::optional<QueryId> q = pool.Draw(strat, h, rng);
    if (!q) q = pool.DrawGlobal(rng);
    if (!q) return false;
    evaluate(*q);
    ++drawn;
    return true;
  };

  switch (options.allocation) {
    case AllocationPolicy::kUniform: {
      while (drawn < query_budget) {
        std::optional<QueryId> q = pool.DrawGlobal(rng);
        if (!q) break;
        evaluate(*q);
        ++drawn;
      }
      break;
    }
    case AllocationPolicy::kEqualPerTemplate: {
      // Round-robin over strata (= templates).
      bool progressed = true;
      while (drawn < query_budget && progressed) {
        progressed = false;
        for (uint32_t h = 0; h < strat.num_strata() && drawn < query_budget;
             ++h) {
          std::optional<QueryId> q = pool.Draw(strat, h, rng);
          if (!q) continue;
          evaluate(*q);
          ++drawn;
          progressed = true;
        }
      }
      break;
    }
    case AllocationPolicy::kFinePerTemplate:
    case AllocationPolicy::kVarianceGuided: {
      const bool fine =
          options.allocation == AllocationPolicy::kFinePerTemplate;
      // Pilot.
      if (fine) {
        // One pass of round-robin so each stratum has an estimate seed.
        for (uint32_t h = 0; h < strat.num_strata() && drawn < query_budget;
             ++h) {
          draw_from(h);
        }
      }
      while (drawn < query_budget && pool.RemainingTotal() > 0 &&
             drawn < options.n_min && !fine) {
        std::optional<QueryId> q = pool.DrawGlobal(rng);
        if (!q) break;
        evaluate(*q);
        ++drawn;
      }
      // Variance-guided allocation, with progressive splits when enabled.
      uint64_t iteration = 0;
      while (drawn < query_budget && pool.RemainingTotal() > 0) {
        ++iteration;
        ConfigId best = 0;
        double best_est = std::numeric_limits<double>::infinity();
        est.Estimates(strat, &scratch, estimates_buf);
        for (ConfigId c = 0; c < k; ++c) {
          if (estimates_buf[c] < best_est) {
            best_est = estimates_buf[c];
            best = c;
          }
        }
        est.SetReference(best);

        // Dynamic budget reallocation: fixed-budget mode has no Pr(CS)
        // machinery, so the VOI gain is priced with the conservative
        // zero-confidence pair weights; a dominated configuration stops
        // being priced and its budget share flows to the live pairs.
        if (budget) {
          std::vector<ConfigId> dominated = budget->DecideRound(
              iteration, best, active, pair_prcs_zero, 0.0);
          for (ConfigId j : dominated) active[j] = false;
        }

        if (!fine && options.stratify) {
          // Target variance: what would make the weakest pair confident at
          // a nominal 95% level (budget mode has no alpha).
          double z = NormalQuantile(0.975);
          double target_se = std::numeric_limits<double>::infinity();
          est.DiffStats(strat, &scratch, diffs_buf, vars_buf);
          for (ConfigId j = 0; j < k; ++j) {
            if (j == best) continue;
            double gap = -diffs_buf[j];
            double se = std::sqrt(std::max(0.0, vars_buf[j]));
            gap = std::max(gap, 0.25 * se);
            if (gap > 0.0) target_se = std::min(target_se, gap / z);
          }
          if (std::isfinite(target_se) && target_se > 0.0) {
            SplitDecision dec = FindBestSplit(
                strat, est.AveragedDiffTemplateStats(active),
                target_se * target_se, options.n_min,
                options.min_template_observations);
            if (dec.beneficial) {
              uint32_t old_stratum = dec.stratum;
              strat.Split(old_stratum, dec.part1);
              uint32_t new_stratum =
                  static_cast<uint32_t>(strat.num_strata() - 1);
              for (uint32_t h : {old_stratum, new_stratum}) {
                while (est.SamplesIn(strat, h) < options.n_min &&
                       drawn < query_budget) {
                  if (!draw_from(h)) break;
                }
              }
            }
          }
        }
        if (drawn >= query_budget) break;

        uint32_t chosen = 0;
        double best_score = -1.0;
        for (uint32_t h = 0; h < strat.num_strata(); ++h) {
          if (pool.RemainingInStratum(strat, h) == 0) continue;
          double red = est.VarianceReductionForNext(strat, h, active);
          if (options.overhead_aware) {
            red /= StratumMeanOverhead(strat, h, overheads, pops);
          }
          if (red > best_score) {
            best_score = red;
            chosen = h;
          }
        }
        if (!draw_from(chosen)) break;
      }
      break;
    }
  }

  FixedBudgetResult out;
  out.estimates.resize(k);
  est.Estimates(strat, &scratch, out.estimates);
  out.best = ArgMin(out.estimates, active);
  out.queries_sampled = est.TotalSamples();
  out.optimizer_calls = source->num_calls() - calls_before;
  if (budget) {
    const BudgetStats& bs = budget->stats();
    out.optimizer_calls += bs.bound_refinement_calls;
    out.bound_refinement_calls = bs.bound_refinement_calls;
    out.dominance_eliminations = bs.dominance_eliminations;
    out.refined_queries = bs.refined_queries;
  }
  return out;
}

FixedBudgetResult RunIndependentFixed(CostSource* source,
                                      uint64_t query_budget,
                                      const FixedBudgetOptions& options,
                                      Rng* rng) {
  const size_t k = source->num_configs();
  const size_t T = source->num_templates();
  const uint64_t calls_before = source->num_calls();
  std::vector<uint64_t> pops = TemplatePopulationsOf(*source);

  std::vector<Stratification> strat;
  std::vector<StratifiedSamplePool> pools;
  for (size_t c = 0; c < k; ++c) {
    strat.emplace_back(pops);
    pools.emplace_back(*source, rng);
    if (options.allocation == AllocationPolicy::kEqualPerTemplate ||
        options.allocation == AllocationPolicy::kFinePerTemplate) {
      MakeFineStrata(&strat.back());
    }
  }
  IndependentEstimator est(k, T, pops);
  std::vector<bool> active(k, true);
  std::unique_ptr<BudgetManager> budget = MaybeBudget(options, k, pops);
  std::vector<double> pair_prcs_zero(k, 0.0);
  uint64_t drawn = 0;

  auto draw_for = [&](ConfigId c, uint32_t h) {
    std::optional<QueryId> q = pools[c].Draw(strat[c], h, rng);
    if (!q) q = pools[c].DrawGlobal(rng);
    if (!q) return false;
    double cost = source->Cost(*q, c);
    est.Add(c, source->TemplateOf(*q), cost);
    if (budget) {
      budget->ObserveSample(*q, c, cost, source->CostUncertainty(*q, c));
    }
    ++drawn;
    return true;
  };

  switch (options.allocation) {
    case AllocationPolicy::kUniform: {
      ConfigId c = 0;
      while (drawn < query_budget) {
        std::optional<QueryId> q = pools[c].DrawGlobal(rng);
        if (!q) break;
        est.Add(c, source->TemplateOf(*q), source->Cost(*q, c));
        ++drawn;
        c = static_cast<ConfigId>((c + 1) % k);
      }
      break;
    }
    case AllocationPolicy::kEqualPerTemplate: {
      bool progressed = true;
      while (drawn < query_budget && progressed) {
        progressed = false;
        for (ConfigId c = 0; c < k && drawn < query_budget; ++c) {
          for (uint32_t h = 0;
               h < strat[c].num_strata() && drawn < query_budget; ++h) {
            std::optional<QueryId> q = pools[c].Draw(strat[c], h, rng);
            if (!q) continue;
            est.Add(c, source->TemplateOf(*q), source->Cost(*q, c));
            ++drawn;
            progressed = true;
          }
        }
      }
      break;
    }
    case AllocationPolicy::kFinePerTemplate:
    case AllocationPolicy::kVarianceGuided: {
      const bool fine =
          options.allocation == AllocationPolicy::kFinePerTemplate;
      if (fine) {
        for (ConfigId c = 0; c < k; ++c) {
          for (uint32_t h = 0;
               h < strat[c].num_strata() && drawn < query_budget; ++h) {
            draw_for(c, h);
          }
        }
      } else {
        // Pilot: n_min per configuration, round-robin.
        for (uint32_t i = 0; i < options.n_min && drawn < query_budget; ++i) {
          for (ConfigId c = 0; c < k && drawn < query_budget; ++c) {
            std::optional<QueryId> q = pools[c].DrawGlobal(rng);
            if (!q) continue;
            double cost = source->Cost(*q, c);
            est.Add(c, source->TemplateOf(*q), cost);
            if (budget) {
              budget->ObserveSample(*q, c, cost,
                                    source->CostUncertainty(*q, c));
            }
            ++drawn;
          }
        }
      }
      uint64_t stale_guard = 0;
      uint64_t iteration = 0;
      while (drawn < query_budget) {
        ++iteration;
        // Dynamic budget reallocation; see the Delta path.
        if (budget) {
          ConfigId inc = 0;
          double inc_est = std::numeric_limits<double>::infinity();
          for (ConfigId c = 0; c < k; ++c) {
            if (!active[c]) continue;
            double e = est.Estimate(c, strat[c]);
            if (e < inc_est) {
              inc_est = e;
              inc = c;
            }
          }
          std::vector<ConfigId> dominated = budget->DecideRound(
              iteration, inc, active, pair_prcs_zero, 0.0);
          for (ConfigId j : dominated) active[j] = false;
        }
        // Progressive split for the configuration with the highest
        // variance (cheap surrogate for "last sampled" in budget mode).
        if (!fine && options.stratify) {
          ConfigId target = 0;
          double worst = -1.0;
          for (ConfigId c = 0; c < k; ++c) {
            if (!active[c]) continue;  // all true under the static policy
            double v = est.Variance(c, strat[c]);
            if (v > worst) {
              worst = v;
              target = c;
            }
          }
          double z = NormalQuantile(0.975);
          double var = est.Variance(target, strat[target]);
          double target_var = var / (z * z * 4.0);
          SplitDecision dec = FindBestSplit(
              strat[target], est.TemplateStatsFor(target), target_var,
              options.n_min, options.min_template_observations);
          if (dec.beneficial) {
            uint32_t old_stratum = dec.stratum;
            strat[target].Split(old_stratum, dec.part1);
            uint32_t new_stratum =
                static_cast<uint32_t>(strat[target].num_strata() - 1);
            for (uint32_t h : {old_stratum, new_stratum}) {
              while (est.SamplesIn(target, strat[target], h) < options.n_min &&
                     drawn < query_budget) {
                if (!draw_for(target, h)) break;
              }
            }
          }
        }
        if (drawn >= query_budget) break;

        ConfigId chosen_c = 0;
        uint32_t chosen_h = 0;
        double best_score = -1.0;
        for (ConfigId c = 0; c < k; ++c) {
          if (!active[c]) continue;  // all true under the static policy
          for (uint32_t h = 0; h < strat[c].num_strata(); ++h) {
            if (pools[c].RemainingInStratum(strat[c], h) == 0) continue;
            double red = est.VarianceReductionForNext(c, strat[c], h);
            if (red > best_score) {
              best_score = red;
              chosen_c = c;
              chosen_h = h;
            }
          }
        }
        if (best_score < 0.0) break;  // all pools exhausted
        if (!draw_for(chosen_c, chosen_h)) {
          if (++stale_guard > k) break;
        } else {
          stale_guard = 0;
        }
      }
      break;
    }
  }

  FixedBudgetResult out;
  out.estimates.resize(k);
  for (ConfigId c = 0; c < k; ++c) {
    out.estimates[c] = est.Estimate(c, strat[c]);
  }
  out.best = ArgMin(out.estimates, active);
  uint64_t total = 0;
  for (ConfigId c = 0; c < k; ++c) total += est.TotalSamples(c);
  out.queries_sampled = total;
  out.optimizer_calls = source->num_calls() - calls_before;
  if (budget) {
    const BudgetStats& bs = budget->stats();
    out.optimizer_calls += bs.bound_refinement_calls;
    out.bound_refinement_calls = bs.bound_refinement_calls;
    out.dominance_eliminations = bs.dominance_eliminations;
    out.refined_queries = bs.refined_queries;
  }
  return out;
}

}  // namespace

FixedBudgetResult FixedBudgetSelect(CostSource* source, uint64_t query_budget,
                                    const FixedBudgetOptions& options,
                                    Rng* rng) {
  PDX_CHECK(source != nullptr && rng != nullptr);
  PDX_CHECK(query_budget >= 1);
  if (options.exec.enabled) {
    // Interpose the retry/degrade layer and recurse with it disabled. The
    // wrapper forwards num_calls, so the inner run's optimizer accounting
    // is unchanged; degraded cells feed bound midpoints into the
    // estimates.
    FaultTolerantCostSource executor(source, options.exec, options.bounds,
                                     options.trace);
    FixedBudgetOptions inner = options;
    inner.exec.enabled = false;
    FixedBudgetResult out =
        FixedBudgetSelect(&executor, query_budget, inner, rng);
    out.degraded_cells = executor.num_degraded_cells();
    out.whatif_retries = executor.num_retries();
    out.whatif_timeouts = executor.num_timeouts();
    out.whatif_failures = executor.num_failures();
    return out;
  }
  if (options.scheme == SamplingScheme::kDelta) {
    return RunDeltaFixed(source, query_budget, options, rng);
  }
  return RunIndependentFixed(source, query_budget, options, rng);
}

}  // namespace pdx
