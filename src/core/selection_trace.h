// Copyright (c) the pdexplore authors.
// Structured tracing of a selection run (ISSUE 3). A TraceSink observes
// the events Algorithm 1 produces — per-round Pr(CS) state, eliminations,
// stratification splits, incumbent changes — without perturbing the run:
// the selector draws no randomness and makes no optimizer calls on behalf
// of the sink, so a traced run is byte-identical to an untraced one.
//
// Cost discipline: a null sink is the disabled state and costs exactly one
// pointer test per event site; event structs are only materialized inside
// that branch. The JSONL sink serializes each event to one JSON line and
// emits it with a single locked write, so it is safe to share across
// ThreadPool workers (e.g. one traced trial inside a parallel Monte-Carlo
// sweep).
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/types.h"
#include "common/span.h"
#include "common/status.h"

namespace pdx {

/// Shared obs-histogram names for per-call what-if latency, attributed to
/// the cache outcome of the call (see core/cost_source.cc). The trace's
/// whatif_latency summary events read these back.
inline constexpr char kWhatIfColdNsMetric[] = "pdx_whatif_cold_ns";
inline constexpr char kWhatIfSignatureHitNsMetric[] =
    "pdx_whatif_signature_hit_ns";
inline constexpr char kWhatIfExactHitNsMetric[] = "pdx_whatif_exact_hit_ns";

/// Per-pair Pr(CS) state within a round event. `gap` is the observed cost
/// gap in the direction that favors the incumbent (positive = incumbent
/// ahead), `se` the standard error of the gap estimator; both are 0 for
/// pairs frozen by elimination (their Pr(CS) is the frozen value).
struct TracePair {
  ConfigId config = 0;
  double pr_cs = 0.0;
  double gap = 0.0;
  double se = 0.0;
  bool active = true;
};

/// Emitted once when a selection run begins.
struct TraceRunStart {
  const char* scheme = "delta";  // "delta" | "independent"
  uint64_t num_configs = 0;
  uint64_t num_templates = 0;
  uint64_t workload_size = 0;
  double alpha = 0.0;
  double delta = 0.0;
  uint32_t n_min = 0;
  bool stratify = false;
  double elimination_threshold = 1.0;
};

/// Emitted once per selection-loop round, after the Bonferroni bound is
/// evaluated. `samples`/`optimizer_calls` are cumulative for the run.
struct TraceRound {
  uint64_t round = 0;
  uint64_t samples = 0;
  uint64_t optimizer_calls = 0;
  ConfigId incumbent = 0;
  double bonferroni = 0.0;
  uint32_t active_configs = 0;
  uint32_t num_strata = 0;
  std::vector<TracePair> pairs;
};

/// A configuration frozen out by elimination.
struct TraceElimination {
  uint64_t round = 0;
  ConfigId config = 0;
  double pr_cs = 0.0;
  double threshold = 0.0;
  std::string reason;
};

/// A stratification split accepted by Algorithm 2. `config` is the
/// configuration whose stratification split (kSharedStratification for
/// Delta Sampling's shared one). `neyman` is the post-split Neyman
/// allocation of the estimated required sample total over all strata.
struct TraceSplit {
  static constexpr int32_t kSharedStratification = -1;

  uint64_t round = 0;
  int32_t config = kSharedStratification;
  uint32_t stratum = 0;
  uint32_t new_stratum = 0;
  std::vector<TemplateId> part1;
  uint64_t est_total_samples = 0;
  std::vector<double> neyman;
};

/// Incumbent-best change between rounds.
struct TraceIncumbent {
  uint64_t round = 0;
  ConfigId from = 0;
  ConfigId to = 0;
};

/// Emitted once when the run terminates; mirrors SelectionResult.
struct TraceRunEnd {
  ConfigId best = 0;
  double pr_cs = 0.0;
  bool reached_target = false;
  uint64_t rounds = 0;
  uint64_t samples = 0;
  uint64_t optimizer_calls = 0;
  uint32_t active_configs = 0;
};

/// Per-call what-if latency summary for one cache bucket ("cold",
/// "signature_hit", "exact_hit"), read from the obs histograms.
struct TraceWhatIfLatency {
  std::string bucket;
  uint64_t count = 0;
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  double p99_ns = 0.0;
};

/// A failed, timed-out, or degraded what-if call (ISSUE 4). `kind` is
/// "failure" or "timeout" for an individual erroring attempt, "degraded"
/// when a cell exhausted its retries and fell back to the §6 cost-bound
/// interval [bound_low, bound_high] (only then are the bounds non-zero).
struct TraceWhatIfError {
  std::string kind;
  QueryId query = 0;
  ConfigId config = 0;
  uint32_t attempt = 0;
  double latency_ms = 0.0;
  double bound_low = 0.0;
  double bound_high = 0.0;
};

/// One BudgetManager round decision (ISSUE 7). `action` is "refine" (a
/// bound-refinement chunk was taken), "sample" (the what-if draw won the
/// value-per-ms comparison), or "halt_refine" (the §6.2 projection says no
/// pair can still be dominated; refinement stops for the run).
/// `bound_calls` is cumulative for the run; `refined_queries` and
/// `dominated` are this round's counts; `value_*` are the compared
/// expected-Pr(CS)-gain-per-millisecond scores (0 when not computed).
struct TraceBudgetDecision {
  uint64_t round = 0;
  std::string action;
  uint64_t refined_queries = 0;
  uint64_t bound_calls = 0;
  uint64_t dominated = 0;
  double value_refine = 0.0;
  double value_sample = 0.0;
};

/// One closed self-profiling span (ISSUE 8), drained from the per-thread
/// span buffers at the end of a run. `id`/`parent` link the hierarchy
/// within a thread (`parent` 0 = root); `counter` names the tracked
/// registry counter whose growth over the span is `counter_delta` (empty
/// when none was tracked).
struct TraceSpan {
  std::string name;
  std::string category;
  uint64_t id = 0;
  uint64_t parent = 0;
  uint32_t tid = 0;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  std::string counter;
  uint64_t counter_delta = 0;
};

/// Observer interface. All methods default to no-ops, so sinks override
/// only what they consume. Implementations must be thread-safe: a sink
/// can be shared by concurrent selection runs.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void RunStart(const TraceRunStart&) {}
  virtual void Round(const TraceRound&) {}
  virtual void Elimination(const TraceElimination&) {}
  virtual void Split(const TraceSplit&) {}
  virtual void Incumbent(const TraceIncumbent&) {}
  virtual void RunEnd(const TraceRunEnd&) {}
  virtual void WhatIfLatency(const TraceWhatIfLatency&) {}
  virtual void WhatIfError(const TraceWhatIfError&) {}
  virtual void BudgetDecision(const TraceBudgetDecision&) {}
  virtual void Span(const TraceSpan&) {}
  virtual void Flush() {}
};

/// Enabled-but-discarding sink: exercises the full event-construction
/// path with zero output. Used by the overhead microbenchmarks.
class NoopTraceSink : public TraceSink {};

/// JSONL file sink: one event per line, `{"ev":"<type>",...}`. Doubles
/// are printed with %.17g so the recorded values round-trip bit-exactly.
/// Each line is assembled fully and written under one mutex-held fwrite —
/// no torn lines under concurrent writers.
class JsonlTraceSink : public TraceSink {
 public:
  /// Opens (truncates) `path` for writing.
  static Result<std::unique_ptr<JsonlTraceSink>> Open(const std::string& path);
  ~JsonlTraceSink() override;

  void RunStart(const TraceRunStart& e) override;
  void Round(const TraceRound& e) override;
  void Elimination(const TraceElimination& e) override;
  void Split(const TraceSplit& e) override;
  void Incumbent(const TraceIncumbent& e) override;
  void RunEnd(const TraceRunEnd& e) override;
  void WhatIfLatency(const TraceWhatIfLatency& e) override;
  void WhatIfError(const TraceWhatIfError& e) override;
  void BudgetDecision(const TraceBudgetDecision& e) override;
  void Span(const TraceSpan& e) override;
  void Flush() override;

 private:
  explicit JsonlTraceSink(std::FILE* f) : file_(f) {}

  void WriteLine(const std::string& line);

  std::FILE* file_;
  std::mutex mu_;
};

/// The PDX_TRACE environment fallback (the --trace flag's sibling,
/// mirroring the PDX_CACHE / PDX_THREADS convention). Returns an empty
/// string when unset.
std::string TracePathFromEnv();

/// Emits one whatif_latency summary event per non-empty cache bucket
/// (cold / signature_hit / exact_hit), reading the shared obs histograms.
/// No-op when `sink` is null or obs timing never ran.
void EmitWhatIfLatencySummary(TraceSink* sink);

/// Emits one `span` event per record. No-op when `sink` is null.
void EmitSpans(TraceSink* sink, const std::vector<obs::SpanRecord>& records);

/// Drains the process span buffers and emits every closed span to `sink`
/// (obs::DrainSpans + EmitSpans). Returns the drained snapshot so the
/// caller can also roll it up into a run-ledger manifest. When `sink` is
/// null the buffers are still drained.
obs::SpanSnapshot DrainSpansToSink(TraceSink* sink);

// ---------------------------------------------------------------------------
// Trace reading (pdx_tool report)

/// One convergence-table row recovered from a "round" trace event.
struct TraceConvergenceRow {
  uint64_t round = 0;
  uint64_t samples = 0;
  uint64_t optimizer_calls = 0;
  double pr_cs = 0.0;
  uint32_t active_configs = 0;
  uint32_t num_strata = 0;
};

/// Aggregate view of one JSONL trace file.
struct TraceReport {
  std::string scheme;
  uint64_t num_configs = 0;
  double alpha = 0.0;
  std::vector<TraceConvergenceRow> rounds;
  std::vector<TraceElimination> eliminations;
  uint64_t num_splits = 0;
  uint64_t num_incumbent_changes = 0;
  bool has_run_end = false;
  TraceRunEnd end;
  std::vector<TraceWhatIfLatency> whatif;
  /// whatif_error event counts by kind (ISSUE 4 fault tolerance).
  uint64_t whatif_failures = 0;
  uint64_t whatif_timeouts = 0;
  uint64_t whatif_degraded = 0;
  /// budget_decision aggregates (ISSUE 7). Counts are over all events;
  /// budget_bound_calls is the last event's cumulative value.
  uint64_t budget_decisions = 0;
  uint64_t budget_refine_rounds = 0;
  uint64_t budget_refined_queries = 0;
  uint64_t budget_bound_calls = 0;
  uint64_t budget_dominated = 0;
  uint64_t budget_halts = 0;
  /// span event rollup (ISSUE 8): aggregated by (category, name), ordered
  /// by total_ns descending — independent of the event order in the file,
  /// so traces with spans interleaved across threads roll up identically.
  uint64_t num_spans = 0;
  std::vector<obs::SpanRollupRow> span_rollup;
};

/// Parses a JSONL trace written by JsonlTraceSink. Fails (with the line
/// number) on unreadable files, malformed lines — torn/truncated JSON
/// objects, a trailing fragment missing its newline, a line without the
/// "ev" discriminator — while *unknown* event types (a complete object
/// with an unrecognized "ev") are skipped for forward compatibility.
Result<TraceReport> ReadTraceReport(const std::string& path);

/// Converts the `span` events of a JSONL trace into Chrome trace-event
/// JSON (the chrome://tracing / Perfetto "traceEvents" array of complete
/// "X" events; timestamps in microseconds, one track per recording
/// thread). Returns the number of spans written; fails on unreadable
/// input, malformed lines, or an unwritable output path.
Result<uint64_t> WriteChromeTrace(const std::string& trace_path,
                                  const std::string& out_path);

}  // namespace pdx
