// Copyright (c) the pdexplore authors.
// Batch-means statistical selection — the §2 related-work baseline.
//
// Classical selection-and-ranking procedures [Kim & Nelson 2003] assume
// normally distributed measurements per system. Query costs are anything
// but normal, so the standard adaptation is *batching* [Steiger & Wilson
// 1999]: aggregate raw measurements into batch means large enough to be
// approximately normal, then rank systems on the batch means. The paper
// argues this "requires a large number of initial measurements (batch
// sizes of over 1000 measurements are common), thereby nullifying the
// efficiency gain due to sampling". This implementation makes that
// comparison concrete: the same stopping semantics as the comparison
// primitive, but inference is restricted to whole batch means.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/cost_source.h"

namespace pdx {

/// Options for batch-means selection.
struct BatchingOptions {
  /// Target probability of correct selection.
  double alpha = 0.9;
  /// Sensitivity (as in the comparison primitive).
  double delta = 0.0;
  /// Raw measurements aggregated into one batch mean. The literature uses
  /// hundreds to >1000; smaller values violate the normality premise.
  uint32_t batch_size = 200;
  /// Batch means per configuration before any confidence statement
  /// (the procedures need several normal observations per system).
  uint32_t min_batches = 5;
  /// Hard cap on total sampled queries across configurations (0 = none).
  uint64_t max_samples = 0;
};

/// Outcome of a batching selection.
struct BatchingResult {
  ConfigId best = 0;
  double pr_cs = 0.0;
  bool reached_target = false;
  /// Total queries sampled over all configurations.
  uint64_t queries_sampled = 0;
  uint64_t optimizer_calls = 0;
  /// Batches completed per configuration.
  std::vector<uint32_t> batches;
};

/// Selects the lowest-cost configuration using independent per-config
/// batches: each batch is `batch_size` fresh queries sampled without
/// replacement and evaluated in that configuration only; inference uses
/// the mean and spread of the per-config batch means. Stops when the
/// Bonferroni-combined pairwise confidence exceeds alpha, when a
/// configuration's population is exhausted, or at max_samples.
BatchingResult BatchingCompare(CostSource* source,
                               const BatchingOptions& options, Rng* rng);

}  // namespace pdx
