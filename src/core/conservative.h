// Copyright (c) the pdexplore authors.
// Conservative two-configuration comparison (paper §6, assembled).
//
// The plain primitive trusts (i) the CLT at n >= n_min = 30 and (ii) the
// sample variance. Under heavy cost skew both can fail silently and the
// reported Pr(CS) overstates the real selection probability. Given
// per-query bounds on the cost difference (§6.1), this primitive:
//
//   1. bounds the skew of the difference distribution (G1, vertex search)
//      and derives the minimum sample size from the modified Cochran rule
//      (eq. 9) — replacing the n_min = 30 rule of thumb;
//   2. bounds the variance (sigma^2_max, the rho-rounded DP) and uses it
//      in place of the sample variance when computing Pr(CS) — so the
//      reported probability is a certified lower bound (up to the normal
//      approximation the Cochran rule guarantees);
//   3. samples (Delta style, both configurations per query) until the
//      conservative Pr(CS) exceeds alpha.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/clt_check.h"
#include "core/cost_source.h"

namespace pdx {

/// Options for the conservative comparison.
struct ConservativeOptions {
  double alpha = 0.9;
  double delta = 0.0;
  /// Rounding granularity of the variance DP, relative to the mean
  /// interval magnitude (the DP rho is mean(|bounds|) * rho_fraction).
  double rho_fraction = 0.01;
  /// Hard cap on sampled queries (0 = workload size).
  uint64_t max_samples = 0;
};

/// Outcome of a conservative comparison.
struct ConservativeResult {
  /// 0 or 1: index of the selected configuration.
  ConfigId best = 0;
  /// Certified-conservative Pr(CS) at termination.
  double pr_cs = 0.0;
  bool reached_target = false;
  /// Cochran minimum sample size derived from the skew bound.
  uint64_t n_min = 0;
  uint64_t queries_sampled = 0;
  uint64_t optimizer_calls = 0;
  /// The §6.2 bound bundle actually used.
  CltValidation validation;
  /// Estimated total-cost difference Cost(WL, other) - Cost(WL, best).
  double estimated_gap = 0.0;
};

/// Compares the two configurations of `source` (must have exactly 2).
/// `delta_bounds[q]` must bound Cost(q, C0) - Cost(q, C1) for every query
/// (from CostBoundsDeriver::DeltaBounds). Sampling is uniform without
/// replacement; each sampled query is evaluated in both configurations.
ConservativeResult ConservativeCompare(CostSource* source,
                                       const std::vector<CostInterval>& delta_bounds,
                                       const ConservativeOptions& options,
                                       Rng* rng);

}  // namespace pdx
