// Copyright (c) the pdexplore authors.
// The cost oracle the comparison primitive samples from. "To sample a
// query" in the paper means: fetch the query text and evaluate its cost
// with the query optimizer under a configuration — the expensive resource
// being optimizer calls. CostSource abstracts that: the live
// implementation forwards to the what-if optimizer; the Monte-Carlo
// harness replays a precomputed cost matrix so the same selection run can
// be repeated thousands of times; CachingCostSource memoizes a live
// source so no (query, configuration) pair is ever costed twice.
//
// Thread-safety: Cost() may be called concurrently from ThreadPool
// workers on every implementation in this header — call accounting is
// atomic and the underlying data is immutable after construction
// (CachingCostSource fills each cache cell exactly once via
// std::call_once).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "catalog/types.h"
#include "common/macros.h"
#include "optimizer/relevance.h"
#include "optimizer/what_if.h"

namespace pdx {

/// Abstract per-(query, configuration) cost oracle with call accounting.
class CostSource {
 public:
  virtual ~CostSource() = default;

  /// Optimizer-estimated cost of query `q` in configuration `c`.
  /// Counts one optimizer call. Safe to call concurrently.
  virtual double Cost(QueryId q, ConfigId c) = 0;

  /// Batched column sweep: prices queries[i] under configuration `c` into
  /// out[i] (out.size() == queries.size()). The contract is exactly the
  /// scalar loop `out[i] = Cost(queries[i], c)` — same values bit for bit,
  /// same call accounting, same cache fills, same exceptions at the same
  /// cell — and the default implementation IS that loop, so third-party
  /// sources that only override Cost() keep working unchanged. Overrides
  /// exist to make the sweep cheap (columnar gathers, hoisted metric
  /// handles, one counter add per batch), never to change its meaning.
  virtual void CostMany(std::span<const QueryId> queries, ConfigId c,
                        std::span<double> out);

  /// Batched row sweep — the Delta-sampling hot path: prices query `q`
  /// under configs[i] into out[i], so sampling one query prices all k
  /// candidate configurations in one virtual dispatch instead of k. Same
  /// scalar-loop contract and default fallback as CostMany.
  virtual void CostAcross(QueryId q, std::span<const ConfigId> configs,
                          std::span<double> out);

  /// Batched CostUncertainty over queries[i] x {c}; scalar-loop contract
  /// and default fallback as CostMany. Only meaningful after the matching
  /// cost sweep.
  virtual void CostUncertaintyMany(std::span<const QueryId> queries,
                                   ConfigId c, std::span<double> out) const;

  /// Batched CostUncertainty over {q} x configs[i].
  virtual void CostUncertaintyAcross(QueryId q,
                                     std::span<const ConfigId> configs,
                                     std::span<double> out) const;

  virtual size_t num_queries() const = 0;
  virtual size_t num_configs() const = 0;

  /// Template of a query (available without an optimizer call: the
  /// workload store records it at trace time).
  virtual TemplateId TemplateOf(QueryId q) const = 0;
  virtual size_t num_templates() const = 0;

  /// Relative optimizer-call overhead of a query (1.0 = average).
  virtual double OptimizeOverhead(QueryId /*q*/) const { return 1.0; }

  /// Half-width of the uncertainty interval around Cost(q, c). 0.0 means
  /// the value is an exact optimizer measurement (every source in this
  /// header); FaultTolerantCostSource (core/fault.h) reports a positive
  /// half-width for cells degraded to §6 cost bounds, which estimators
  /// fold into the standard error. Only meaningful after Cost(q, c).
  virtual double CostUncertainty(QueryId /*q*/, ConfigId /*c*/) const {
    return 0.0;
  }

  /// Optimizer calls made through this source.
  virtual uint64_t num_calls() const = 0;
  virtual void ResetCallCounter() = 0;
};

/// Live source: forwards to a WhatIfOptimizer over a workload and a
/// configuration set. Results are not cached — each Cost() is a real
/// optimizer invocation, as in the deployed tool (wrap in
/// CachingCostSource to memoize).
class WhatIfCostSource : public CostSource {
 public:
  WhatIfCostSource(const WhatIfOptimizer& optimizer, const Workload& workload,
                   std::vector<Configuration> configs);

  double Cost(QueryId q, ConfigId c) override;
  /// Batched live sweeps: every cell is still a real optimizer call, but
  /// the call counter, whatif metric and latency histogram are updated
  /// once per batch (latency at the batch's per-cell mean).
  void CostMany(std::span<const QueryId> queries, ConfigId c,
                std::span<double> out) override;
  void CostAcross(QueryId q, std::span<const ConfigId> configs,
                  std::span<double> out) override;
  size_t num_queries() const override { return workload_.size(); }
  size_t num_configs() const override { return configs_.size(); }
  TemplateId TemplateOf(QueryId q) const override {
    return workload_.query(q).template_id;
  }
  size_t num_templates() const override { return workload_.num_templates(); }
  double OptimizeOverhead(QueryId q) const override {
    return workload_.query(q).optimize_overhead;
  }
  uint64_t num_calls() const override {
    return calls_.load(std::memory_order_relaxed);
  }
  void ResetCallCounter() override {
    calls_.store(0, std::memory_order_relaxed);
  }

  const std::vector<Configuration>& configs() const { return configs_; }
  const Workload& workload() const { return workload_; }

 private:
  const WhatIfOptimizer& optimizer_;
  const Workload& workload_;
  std::vector<Configuration> configs_;
  std::atomic<uint64_t> calls_{0};
};

/// Replay source over a dense precomputed cost matrix. Used by the
/// Monte-Carlo experiment harness; still counts "calls" so sampling
/// efficiency can be reported.
///
/// Storage is columnar and config-major — one flat array with the full
/// query column of each configuration contiguous — so CostMany() is a
/// sequential gather over one column and TotalCost()/Column() stream
/// cache lines instead of hopping row allocations.
class MatrixCostSource : public CostSource {
 public:
  /// `costs[q][c]` (row-major input, transposed internally);
  /// `templates[q]` maps queries to templates. `num_configs`
  /// disambiguates the matrix width when the matrix has no rows (an empty
  /// workload over a non-empty configuration set); when left at the
  /// default it is derived from the first row.
  MatrixCostSource(std::vector<std::vector<double>> costs,
                   std::vector<TemplateId> templates,
                   size_t num_configs = kDeriveNumConfigs);

  /// Movable (the call counter is copied non-atomically: don't move while
  /// another thread is calling Cost()).
  MatrixCostSource(MatrixCostSource&& other) noexcept;
  MatrixCostSource& operator=(MatrixCostSource&& other) noexcept;

  /// Builds the matrix by evaluating every (query, configuration) pair
  /// once — the "exact" evaluation whose call count the primitive is
  /// measured against. Rows are filled in parallel on the global
  /// ThreadPool; the result is bit-identical at every thread count (each
  /// cell is an independent deterministic optimizer call).
  static MatrixCostSource Precompute(const WhatIfOptimizer& optimizer,
                                     const Workload& workload,
                                     const std::vector<Configuration>& configs);

  double Cost(QueryId q, ConfigId c) override;
  void CostMany(std::span<const QueryId> queries, ConfigId c,
                std::span<double> out) override;
  void CostAcross(QueryId q, std::span<const ConfigId> configs,
                  std::span<double> out) override;
  size_t num_queries() const override { return num_queries_; }
  size_t num_configs() const override { return num_configs_; }
  TemplateId TemplateOf(QueryId q) const override {
    PDX_CHECK(q < templates_.size());
    return templates_[q];
  }
  size_t num_templates() const override { return num_templates_; }
  uint64_t num_calls() const override {
    return calls_.load(std::memory_order_relaxed);
  }
  void ResetCallCounter() override {
    calls_.store(0, std::memory_order_relaxed);
  }

  /// The full cost column of a configuration (no call accounting) — used
  /// by harnesses to compute ground-truth totals.
  std::vector<double> Column(ConfigId c) const;
  /// Ground-truth total cost of a configuration (no call accounting).
  double TotalCost(ConfigId c) const;

 private:
  static constexpr size_t kDeriveNumConfigs = static_cast<size_t>(-1);

  /// cells_[c * num_queries_ + q]: column c (all queries of one
  /// configuration) is contiguous.
  std::vector<double> cells_;
  std::vector<TemplateId> templates_;
  size_t num_queries_ = 0;
  size_t num_configs_ = 0;
  size_t num_templates_ = 0;
  std::atomic<uint64_t> calls_{0};
};

/// Memoizing decorator: forwards each distinct (query, configuration)
/// pair to the wrapped source exactly once and replays the stored value
/// afterwards — the deployed tool's what-if cache, where the selection
/// loop never pays for re-costing a pair it already sampled. num_calls()
/// counts only cold misses (the optimizer calls actually made); hits are
/// reported separately.
///
/// The cache is a dense num_queries x num_configs table stored
/// config-major (matching MatrixCostSource's columnar layout, so batched
/// column sweeps touch consecutive cells); each cell is guarded by a
/// std::once_flag, so concurrent Cost() calls for the same pair still
/// make exactly one underlying call. Does not own `inner`.
class CachingCostSource : public CostSource {
 public:
  explicit CachingCostSource(CostSource* inner);

  double Cost(QueryId q, ConfigId c) override;
  void CostMany(std::span<const QueryId> queries, ConfigId c,
                std::span<double> out) override;
  void CostAcross(QueryId q, std::span<const ConfigId> configs,
                  std::span<double> out) override;
  size_t num_queries() const override { return num_queries_; }
  size_t num_configs() const override { return num_configs_; }
  TemplateId TemplateOf(QueryId q) const override {
    return inner_->TemplateOf(q);
  }
  size_t num_templates() const override { return inner_->num_templates(); }
  double OptimizeOverhead(QueryId q) const override {
    return inner_->OptimizeOverhead(q);
  }
  /// Cold misses only: the optimizer calls this source actually caused.
  uint64_t num_calls() const override {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Resets hit/miss accounting; the cache contents are kept.
  void ResetCallCounter() override {
    misses_.store(0, std::memory_order_relaxed);
    hits_.store(0, std::memory_order_relaxed);
  }

  uint64_t num_misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Calls served from the cache without touching the wrapped source.
  uint64_t num_hits() const { return hits_.load(std::memory_order_relaxed); }

 private:
  /// Config-major cell index of (q, c).
  size_t CellOf(QueryId q, ConfigId c) const {
    return static_cast<size_t>(c) * num_queries_ + q;
  }
  /// Fills `cell` if cold; returns true when this call was the miss.
  bool FillCell(QueryId q, ConfigId c, size_t cell);

  CostSource* inner_;
  size_t num_queries_ = 0;
  size_t num_configs_ = 0;
  std::unique_ptr<std::once_flag[]> filled_;
  std::unique_ptr<double[]> values_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

/// Which what-if cache tier a caller wants (examples, benches, tuner):
/// no memoization, exact (query, configuration) cells, or
/// relevant-structure signatures (cross-configuration dedup).
enum class WhatIfCacheMode { kOff, kExact, kSignature };

const char* WhatIfCacheModeName(WhatIfCacheMode mode);

/// Live what-if source with relevant-structure memoization: costs are
/// keyed by (query, atomic-configuration signature) instead of
/// (query, configuration), where the signature is the sorted id list of
/// the configuration's structures that can influence the query's cost
/// (see optimizer/relevance.h). All configurations agreeing on a query's
/// relevant subset — for most queries, the vast majority of any candidate
/// set — share a single optimizer call, which is how CoPhy-style tools
/// cut what-if counts by orders of magnitude below exact-cell caching.
///
/// Costs are bit-identical to an uncached WhatIfCostSource: the optimizer
/// examines exactly the relevant structures, and Configuration's
/// per-table lists iterate in canonical (insertion-order-independent)
/// order, so the replayed value is the value the optimizer would have
/// computed. set_debug_check(true) verifies this on every memoized read.
///
/// Thread-safety: Cost() may be called concurrently. The memo table is
/// sharded (mutex per shard) and each entry is filled exactly once via a
/// per-entry std::call_once; footprints, interned ids and configurations
/// are immutable after construction.
///
/// Call accounting distinguishes three outcomes:
///   * cold calls      — the optimizer was actually invoked;
///   * signature hits  — first touch of a (query, config) cell, served
///                       from another configuration's identical signature;
///   * exact hits      — a (query, config) cell seen before (what plain
///                       CachingCostSource would also have caught).
/// num_calls() reports cold calls only.
class SignatureCachingCostSource : public CostSource {
 public:
  /// Sources over `workload` x `configs`. When `query_ids` is non-empty,
  /// the source exposes only that subset (local QueryId i maps to
  /// workload query query_ids[i]) — used by the tuner's per-round
  /// sub-workload selections.
  SignatureCachingCostSource(const WhatIfOptimizer& optimizer,
                             const Workload& workload,
                             std::vector<Configuration> configs,
                             std::vector<QueryId> query_ids = {});
  ~SignatureCachingCostSource() override;

  double Cost(QueryId q, ConfigId c) override;
  /// Batched fills share one signature scratch buffer per batch, compute
  /// each cell's relevance signature exactly once, and hoist the metric
  /// handles / timing flag out of the loop: accounting classifies every
  /// cell (cold / signature hit / exact hit) exactly as the scalar loop
  /// would, but the atomics and histogram are updated once per batch.
  void CostMany(std::span<const QueryId> queries, ConfigId c,
                std::span<double> out) override;
  void CostAcross(QueryId q, std::span<const ConfigId> configs,
                  std::span<double> out) override;
  size_t num_queries() const override { return queries_.size(); }
  size_t num_configs() const override { return configs_.size(); }
  TemplateId TemplateOf(QueryId q) const override {
    PDX_CHECK(q < queries_.size());
    return queries_[q]->template_id;
  }
  size_t num_templates() const override { return num_templates_; }
  double OptimizeOverhead(QueryId q) const override {
    PDX_CHECK(q < queries_.size());
    return queries_[q]->optimize_overhead;
  }
  /// Cold calls only: optimizer invocations this source actually made.
  uint64_t num_calls() const override {
    return cold_.load(std::memory_order_relaxed);
  }
  /// Resets hit/miss accounting; cache contents and cell-seen state kept.
  void ResetCallCounter() override {
    cold_.store(0, std::memory_order_relaxed);
    signature_hits_.store(0, std::memory_order_relaxed);
    exact_hits_.store(0, std::memory_order_relaxed);
  }

  uint64_t num_cold_calls() const {
    return cold_.load(std::memory_order_relaxed);
  }
  uint64_t num_signature_hits() const {
    return signature_hits_.load(std::memory_order_relaxed);
  }
  uint64_t num_exact_hits() const {
    return exact_hits_.load(std::memory_order_relaxed);
  }
  /// Distinct (query, signature) entries materialized so far.
  uint64_t num_distinct_signatures() const;

  /// Debug mode: every memoized read is cross-checked against a direct
  /// optimizer call (which must agree bitwise). Expensive — tests only.
  void set_debug_check(bool on) { debug_check_ = on; }

  /// The atomic-configuration signature of (q, c): sorted interned ids of
  /// the structures of configuration `c` relevant to query `q`. Exposed
  /// for tests and the signature-overhead microbenchmark.
  void SignatureOf(QueryId q, ConfigId c, std::vector<uint32_t>* out) const;

  const std::vector<Configuration>& configs() const { return configs_; }

 private:
  struct Shard;
  struct Cell;

  /// How a single cell lookup was served (indexes a batch tally array).
  enum class CellClass : uint8_t { kCold = 0, kSignatureHit = 1, kExactHit = 2 };

  void BuildSignature(QueryId q, ConfigId c, std::vector<uint32_t>* sig) const;
  /// Resolves one (q, c) cell — signature built exactly once into a
  /// thread-local scratch, memo probe, optimizer call if cold — and
  /// classifies it, without touching any counter or histogram. Shared by
  /// the scalar path (which then does per-call accounting) and the batched
  /// paths (which tally locally and flush once per batch).
  double ResolveCell(QueryId q, ConfigId c, CellClass* cls);
  /// Publishes a batch's tally (indexed by CellClass) to the atomics and
  /// metric registry in one add per class; latency is attributed at the
  /// batch's per-cell mean.
  void FlushBatchAccounting(uint64_t t0, size_t n, const uint64_t* tally);

  const WhatIfOptimizer& optimizer_;
  std::vector<const Query*> queries_;
  std::vector<Configuration> configs_;
  size_t num_templates_ = 0;
  /// Per-query relevance footprints, computed once at construction.
  std::vector<QueryFootprint> footprints_;
  /// Structures interned across all configurations: distinct structures
  /// get distinct ids (indexes even, views odd), shared structures share
  /// one id — the signature alphabet.
  std::vector<Index> interned_indexes_;
  std::vector<MaterializedView> interned_views_;
  /// [config][position in config.indexes()/views()] -> interned id.
  std::vector<std::vector<uint32_t>> config_index_ids_;
  std::vector<std::vector<uint32_t>> config_view_ids_;
  /// [config]: all interned ids of the configuration, pre-sorted — the
  /// signature of (q, c) is the subsequence relevant to q, so building it
  /// needs no sort.
  std::vector<std::vector<uint32_t>> config_sorted_ids_;
  /// relevant_[q * relevant_stride_ + id]: can interned structure `id`
  /// influence query q's cost? Precomputed once per (query, structure) —
  /// config-independent — so the hot path is a byte test per structure.
  size_t relevant_stride_ = 0;
  std::vector<uint8_t> relevant_;
  /// Sharded (query, signature) -> cost memo table.
  static constexpr size_t kNumShards = 64;
  std::unique_ptr<Shard[]> shards_;
  /// Dense per-cell touched flags for hit classification.
  std::unique_ptr<std::atomic<uint8_t>[]> cell_seen_;
  std::atomic<uint64_t> cold_{0};
  std::atomic<uint64_t> signature_hits_{0};
  std::atomic<uint64_t> exact_hits_{0};
  bool debug_check_ = false;
};

}  // namespace pdx
