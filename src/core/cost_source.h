// Copyright (c) the pdexplore authors.
// The cost oracle the comparison primitive samples from. "To sample a
// query" in the paper means: fetch the query text and evaluate its cost
// with the query optimizer under a configuration — the expensive resource
// being optimizer calls. CostSource abstracts that: the live
// implementation forwards to the what-if optimizer; the Monte-Carlo
// harness replays a precomputed cost matrix so the same selection run can
// be repeated thousands of times.
#pragma once

#include <cstdint>
#include <vector>

#include "catalog/types.h"
#include "common/macros.h"
#include "optimizer/what_if.h"

namespace pdx {

/// Abstract per-(query, configuration) cost oracle with call accounting.
class CostSource {
 public:
  virtual ~CostSource() = default;

  /// Optimizer-estimated cost of query `q` in configuration `c`.
  /// Counts one optimizer call.
  virtual double Cost(QueryId q, ConfigId c) = 0;

  virtual size_t num_queries() const = 0;
  virtual size_t num_configs() const = 0;

  /// Template of a query (available without an optimizer call: the
  /// workload store records it at trace time).
  virtual TemplateId TemplateOf(QueryId q) const = 0;
  virtual size_t num_templates() const = 0;

  /// Relative optimizer-call overhead of a query (1.0 = average).
  virtual double OptimizeOverhead(QueryId /*q*/) const { return 1.0; }

  /// Optimizer calls made through this source.
  virtual uint64_t num_calls() const = 0;
  virtual void ResetCallCounter() = 0;
};

/// Live source: forwards to a WhatIfOptimizer over a workload and a
/// configuration set. Results are not cached — each Cost() is a real
/// optimizer invocation, as in the deployed tool.
class WhatIfCostSource : public CostSource {
 public:
  WhatIfCostSource(const WhatIfOptimizer& optimizer, const Workload& workload,
                   std::vector<Configuration> configs);

  double Cost(QueryId q, ConfigId c) override;
  size_t num_queries() const override { return workload_.size(); }
  size_t num_configs() const override { return configs_.size(); }
  TemplateId TemplateOf(QueryId q) const override {
    return workload_.query(q).template_id;
  }
  size_t num_templates() const override { return workload_.num_templates(); }
  double OptimizeOverhead(QueryId q) const override {
    return workload_.query(q).optimize_overhead;
  }
  uint64_t num_calls() const override { return calls_; }
  void ResetCallCounter() override { calls_ = 0; }

  const std::vector<Configuration>& configs() const { return configs_; }
  const Workload& workload() const { return workload_; }

 private:
  const WhatIfOptimizer& optimizer_;
  const Workload& workload_;
  std::vector<Configuration> configs_;
  uint64_t calls_ = 0;
};

/// Replay source over a dense precomputed cost matrix (row = query,
/// column = configuration). Used by the Monte-Carlo experiment harness;
/// still counts "calls" so sampling efficiency can be reported.
class MatrixCostSource : public CostSource {
 public:
  /// `costs[q][c]`; `templates[q]` maps queries to templates.
  MatrixCostSource(std::vector<std::vector<double>> costs,
                   std::vector<TemplateId> templates);

  /// Builds the matrix by evaluating every (query, configuration) pair
  /// once — the "exact" evaluation whose call count the primitive is
  /// measured against.
  static MatrixCostSource Precompute(const WhatIfOptimizer& optimizer,
                                     const Workload& workload,
                                     const std::vector<Configuration>& configs);

  double Cost(QueryId q, ConfigId c) override;
  size_t num_queries() const override { return costs_.size(); }
  size_t num_configs() const override {
    return costs_.empty() ? 0 : costs_[0].size();
  }
  TemplateId TemplateOf(QueryId q) const override {
    PDX_CHECK(q < templates_.size());
    return templates_[q];
  }
  size_t num_templates() const override { return num_templates_; }
  uint64_t num_calls() const override { return calls_; }
  void ResetCallCounter() override { calls_ = 0; }

  /// The full cost column of a configuration (no call accounting) — used
  /// by harnesses to compute ground-truth totals.
  std::vector<double> Column(ConfigId c) const;
  /// Ground-truth total cost of a configuration (no call accounting).
  double TotalCost(ConfigId c) const;

 private:
  std::vector<std::vector<double>> costs_;
  std::vector<TemplateId> templates_;
  size_t num_templates_ = 0;
  uint64_t calls_ = 0;
};

}  // namespace pdx
