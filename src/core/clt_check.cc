#include "core/clt_check.h"

#include <cmath>

#include "common/macros.h"
#include "core/pr_cs.h"

namespace pdx {

uint64_t CochranRequiredSampleSize(double g1) {
  PDX_CHECK(g1 >= 0.0);
  double n = 28.0 + 25.0 * g1 * g1;
  return static_cast<uint64_t>(std::floor(n)) + 1;  // strict inequality
}

CltValidation ValidateClt(const std::vector<CostInterval>& bounds,
                          double rho) {
  CltValidation out;
  VarianceBoundResult var = MaxVarianceBound(bounds, rho);
  out.sigma2_max = var.upper;
  SkewBoundResult skew = MaxSkewBound(bounds);
  out.g1_estimate = skew.g1_estimate;
  out.g1_upper = skew.g1_upper;
  out.n_min_estimate = CochranRequiredSampleSize(skew.g1_estimate);
  out.n_min_certified = CochranRequiredSampleSize(skew.g1_upper);
  return out;
}

double ConservativePairwisePrCs(double observed_gap, double sigma2_max,
                                uint64_t n, uint64_t N, double delta) {
  PDX_CHECK(sigma2_max >= 0.0);
  // S^2 = sigma^2 * N / (N - 1) per the paper's notation.
  double s2 = N > 1 ? sigma2_max * static_cast<double>(N) /
                          (static_cast<double>(N) - 1.0)
                    : sigma2_max;
  double se = FpcStandardError(s2, n, N);
  return PairwisePrCs(observed_gap, se, delta);
}

}  // namespace pdx
