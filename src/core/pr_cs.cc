#include "core/pr_cs.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "common/normal.h"

namespace pdx {

double PairwisePrCs(double observed_gap, double se, double delta) {
  PDX_CHECK(delta >= 0.0);
  PDX_CHECK_MSG(!std::isnan(observed_gap),
                "PairwisePrCs: observed_gap is NaN");
  // A NaN standard error means the variance estimate is corrupt (e.g.
  // round-off-negative variance upstream): clamp to the conservative
  // "nothing known" state rather than poisoning the Bonferroni sum.
  if (std::isnan(se)) se = std::numeric_limits<double>::infinity();
  double margin = observed_gap + delta;
  if (se <= 0.0) return margin >= 0.0 ? 1.0 : 0.0;
  double z = margin / se;
  // inf/inf (unbounded margin over unknown variance) is NaN: no evidence
  // either way.
  if (std::isnan(z)) z = 0.0;
  return NormalCdf(z);
}

double BonferroniPrCs(const std::vector<double>& pairwise) {
  double miss = 0.0;
  for (double p : pairwise) {
    PDX_CHECK(p >= 0.0 && p <= 1.0);
    miss += 1.0 - p;
  }
  return std::clamp(1.0 - miss, 0.0, 1.0);
}

double FpcStandardError(double sample_variance, uint64_t n, uint64_t N) {
  if (N == 0) return 0.0;
  // Census: every population unit was measured, the estimator is exact.
  if (n >= N) return 0.0;
  // Fewer than two samples carry no variance information. The old
  // behavior returned 0, which let PairwisePrCs report certainty from a
  // single sample; an unknown variance must read as unbounded error.
  if (n < 2) return std::numeric_limits<double>::infinity();
  double nn = static_cast<double>(n);
  double NN = static_cast<double>(N);
  double fpc = std::max(0.0, 1.0 - nn / NN);
  double var = NN * NN * (sample_variance / nn) * fpc;
  return std::sqrt(std::max(0.0, var));
}

double StratumVarianceTerm(double sample_variance, uint64_t n_h, uint64_t N_h) {
  if (N_h == 0) return 0.0;
  if (n_h >= N_h) return 0.0;  // stratum census: exact
  if (n_h < 2) return std::numeric_limits<double>::infinity();
  double nn = static_cast<double>(n_h);
  double NN = static_cast<double>(N_h);
  double fpc = std::max(0.0, 1.0 - nn / NN);
  return NN * NN * (sample_variance / nn) * fpc;
}

}  // namespace pdx
