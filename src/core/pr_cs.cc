#include "core/pr_cs.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/normal.h"

namespace pdx {

double PairwisePrCs(double observed_gap, double se, double delta) {
  PDX_CHECK(delta >= 0.0);
  double margin = observed_gap + delta;
  if (se <= 0.0) return margin >= 0.0 ? 1.0 : 0.0;
  return NormalCdf(margin / se);
}

double BonferroniPrCs(const std::vector<double>& pairwise) {
  double miss = 0.0;
  for (double p : pairwise) {
    PDX_CHECK(p >= 0.0 && p <= 1.0);
    miss += 1.0 - p;
  }
  return std::clamp(1.0 - miss, 0.0, 1.0);
}

double FpcStandardError(double sample_variance, uint64_t n, uint64_t N) {
  if (n < 2 || N == 0) return 0.0;
  double nn = static_cast<double>(n);
  double NN = static_cast<double>(N);
  double fpc = std::max(0.0, 1.0 - nn / NN);
  double var = NN * NN * (sample_variance / nn) * fpc;
  return std::sqrt(std::max(0.0, var));
}

double StratumVarianceTerm(double sample_variance, uint64_t n_h, uint64_t N_h) {
  if (n_h < 1 || N_h == 0) return 0.0;
  double nn = static_cast<double>(n_h);
  double NN = static_cast<double>(N_h);
  double fpc = std::max(0.0, 1.0 - nn / NN);
  return NN * NN * (sample_variance / nn) * fpc;
}

}  // namespace pdx
