// Copyright (c) the pdexplore authors.
// Progressive workload stratification (paper §5.1, Algorithms 1 & 2).
//
// Strata are unions of query templates: "we only consider stratifications
// in which all queries of one template are grouped into the same stratum".
// The stratification starts as a single stratum and is refined one split
// at a time; candidate splits cut a stratum in two at a boundary of the
// member templates ordered by estimated average cost, and are scored by
// the estimated total number of samples (#Samples) needed to reach a
// target estimator variance under Neyman allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "catalog/types.h"

namespace pdx {

/// Per-template running knowledge used to evaluate stratifications.
struct TemplateStats {
  /// |queries of this template| in the workload.
  uint64_t population = 0;
  /// Estimated average cost (or cost difference, for Delta Sampling).
  double mean = 0.0;
  /// Estimated within-template sample variance.
  double variance = 0.0;
  /// Number of sampled observations backing the estimates.
  uint64_t observations = 0;
};

/// Aggregated (population-weighted) stats of a set of templates.
struct StratumEstimate {
  uint64_t population = 0;
  double mean = 0.0;
  /// Population-weighted variance: within-template variance plus
  /// between-template-mean spread.
  double variance = 0.0;
  uint64_t observations = 0;
};

StratumEstimate EstimateStratum(const std::vector<TemplateId>& templates,
                                const std::vector<TemplateStats>& stats);

/// A partition of the template set into strata.
class Stratification {
 public:
  /// Starts with a single stratum containing all templates with non-zero
  /// population.
  explicit Stratification(const std::vector<uint64_t>& template_populations);

  size_t num_strata() const { return strata_.size(); }
  uint32_t StratumOf(TemplateId t) const;
  const std::vector<TemplateId>& TemplatesOf(uint32_t stratum) const;
  uint64_t PopulationOf(uint32_t stratum) const;
  uint64_t total_population() const { return total_population_; }

  /// Splits `stratum` into (part1, rest). `part1` must be a strict
  /// non-empty subset of the stratum's templates. part1 keeps the stratum
  /// id; the rest becomes a new stratum (id = num_strata()-1 after call).
  void Split(uint32_t stratum, const std::vector<TemplateId>& part1);

 private:
  void RecomputePopulation(uint32_t stratum);

  std::vector<uint64_t> template_populations_;
  std::vector<std::vector<TemplateId>> strata_;
  std::vector<uint64_t> strata_population_;
  std::vector<uint32_t> stratum_of_;  // indexed by TemplateId
  uint64_t total_population_ = 0;
};

/// Continuous Neyman allocation of `n` samples over strata with lower
/// bounds: minimizes eq. 5 subject to lo_h <= n_h <= N_h and sum n_h = n.
/// `stddevs` are the estimated stratum standard deviations. Bounds are
/// applied by iterative clamping of violators.
std::vector<double> NeymanAllocation(const std::vector<double>& populations,
                                     const std::vector<double>& stddevs,
                                     double n, const std::vector<double>& lo);

/// Stratified estimator variance (eq. 5) for a continuous allocation.
double StratifiedVariance(const std::vector<double>& populations,
                          const std::vector<double>& variances,
                          const std::vector<double>& allocation);

/// #Samples(C, ST, NT) (paper §5.1): the minimum total sample count whose
/// Neyman allocation (respecting lower bounds `lo`) achieves
/// `target_variance`, found by binary search [O(L log N)]. Returns the
/// full-population size if even exhaustive sampling misses the target
/// (fpc drives the variance to 0 there, so that cannot happen for
/// target >= 0; kept as a guard).
uint64_t MinSamplesForTargetVariance(const std::vector<double>& populations,
                                     const std::vector<double>& variances,
                                     double target_variance,
                                     const std::vector<double>& lo);

/// Outcome of the Algorithm-2 split search.
struct SplitDecision {
  bool beneficial = false;
  uint32_t stratum = 0;
  std::vector<TemplateId> part1;
  /// Estimated #Samples after applying the split.
  uint64_t est_total_samples = 0;
};

/// Algorithm 2: evaluates all single-stratum splits at template-cost
/// boundaries and returns the one minimizing estimated #Samples, or
/// beneficial=false. A stratum is only considered when (a) its expected
/// allocation is >= 2*n_min and (b) every member template has at least
/// `min_template_obs` observations (average-cost estimates exist).
SplitDecision FindBestSplit(const Stratification& strat,
                            const std::vector<TemplateStats>& stats,
                            double target_variance, uint32_t n_min,
                            uint32_t min_template_obs);

}  // namespace pdx
