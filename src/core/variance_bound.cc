#include "core/variance_bound.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>

#include "common/macros.h"
#include "common/running_stats.h"

namespace pdx {

namespace {

double RoundToRho(double v, double rho) {
  return std::floor((v + rho / 2.0) / rho) * rho;
}

// A group of `count` identical rounded intervals.
struct IntervalGroup {
  double low = 0.0;      // rounded low endpoint
  double high = 0.0;     // rounded high endpoint
  uint64_t steps = 0;    // (high - low) / rho
  uint64_t count = 0;
};

}  // namespace

VarianceBoundResult MaxVarianceBound(const std::vector<CostInterval>& bounds,
                                     double rho) {
  PDX_CHECK(!bounds.empty());
  PDX_CHECK(rho > 0.0);
  const double n = static_cast<double>(bounds.size());

  // Round and group.
  std::map<std::pair<int64_t, int64_t>, uint64_t> grouped;
  double base_sum = 0.0;    // sum of v with every interval at its low end
  double base_sumsq = 0.0;  // corresponding sum of v^2
  double theta_acc = 0.0;   // sum(rho * high_i^rho + rho^2/4)
  for (const CostInterval& b : bounds) {
    PDX_CHECK(b.low <= b.high);
    double lo = RoundToRho(b.low, rho);
    double hi = RoundToRho(b.high, rho);
    if (hi < lo) hi = lo;
    int64_t lo_steps = static_cast<int64_t>(std::llround(lo / rho));
    int64_t hi_steps = static_cast<int64_t>(std::llround(hi / rho));
    base_sum += lo;
    base_sumsq += lo * lo;
    theta_acc += rho * hi + rho * rho / 4.0;
    if (hi_steps > lo_steps) {
      grouped[{lo_steps, hi_steps}] += 1;
    }
  }

  std::vector<IntervalGroup> groups;
  groups.reserve(grouped.size());
  uint64_t total_steps = 0;
  for (const auto& [key, count] : grouped) {
    IntervalGroup g;
    g.low = static_cast<double>(key.first) * rho;
    g.high = static_cast<double>(key.second) * rho;
    g.steps = static_cast<uint64_t>(key.second - key.first);
    g.count = count;
    total_steps += g.steps * g.count;
    groups.push_back(g);
  }

  VarianceBoundResult result;
  result.dp_states = total_steps + 1;
  result.groups = groups.size();
  result.theta = (2.0 / n) * theta_acc;

  // DP over achievable sums: dp[j] = max extra sum(v^2) when the total sum
  // is base_sum + j * rho; -inf marks unreachable states.
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> dp(total_steps + 1, kNegInf);
  dp[0] = 0.0;
  std::vector<double> next(dp.size());

  uint64_t reach = 0;  // largest reachable state so far
  for (const IntervalGroup& g : groups) {
    const uint64_t w = g.steps;                      // stride per chosen-high
    const double v = g.high * g.high - g.low * g.low;  // value per chosen-high
    const double ratio = v / static_cast<double>(w);
    const uint64_t m = g.count;
    const uint64_t new_reach = reach + w * m;
    std::fill(next.begin(), next.begin() + new_reach + 1, kNegInf);

    if (m == 1) {
      // Singleton group: plain two-way transition (the paper's per-variable
      // recurrence), in place and descending — no deque overhead.
      for (uint64_t j = new_reach; j >= w; --j) {
        double from = dp[j - w];
        double cand = from == kNegInf ? kNegInf : from + v;
        next[j] = std::max(j <= reach ? dp[j] : kNegInf, cand);
        if (j == w) break;
      }
      for (uint64_t j = 0; j < w && j <= new_reach; ++j) {
        next[j] = j <= reach ? dp[j] : kNegInf;
      }
      dp.swap(next);
      reach = new_reach;
      continue;
    }
    // For each residue class modulo w, new_dp[x] = ratio*x +
    // max_{c in [0,m], x-cw >= 0} (dp[x-cw] - ratio*(x-cw)): a sliding-
    // window maximum with window m+1 along the class.
    for (uint64_t r = 0; r < w; ++r) {
      std::deque<std::pair<uint64_t, double>> window;  // (index, g-value)
      for (uint64_t x = r; x <= new_reach; x += w) {
        if (x <= reach) {
          double gval =
              dp[x] == kNegInf ? kNegInf : dp[x] - ratio * static_cast<double>(x);
          while (!window.empty() && window.back().second <= gval) {
            window.pop_back();
          }
          window.push_back({x, gval});
        }
        // Drop entries outside the window [x - m*w, x].
        while (!window.empty() && window.front().first + w * m < x) {
          window.pop_front();
        }
        if (!window.empty() && window.front().second != kNegInf) {
          next[x] = ratio * static_cast<double>(x) + window.front().second;
        }
      }
    }
    dp.swap(next);
    if (next.size() < dp.size()) next.resize(dp.size());
    reach = new_reach;
  }

  // Scan all achievable sums for the best variance (eq. 8).
  double best = 0.0;
  for (uint64_t j = 0; j <= total_steps; ++j) {
    if (dp[j] == kNegInf) continue;
    double sum = base_sum + static_cast<double>(j) * rho;
    double sumsq = base_sumsq + dp[j];
    double var = (sumsq - sum * sum / n) / n;
    best = std::max(best, var);
  }
  result.sigma2_rounded = best;
  result.upper = best + result.theta;
  result.lower = std::max(0.0, best - result.theta);
  return result;
}

VarianceBoundResult MaxVarianceBoundUngrouped(
    const std::vector<CostInterval>& bounds, double rho) {
  PDX_CHECK(!bounds.empty());
  PDX_CHECK(rho > 0.0);
  const double n = static_cast<double>(bounds.size());

  struct WideInterval {
    double low;
    double high;
    uint64_t steps;
  };
  std::vector<WideInterval> wide;
  double base_sum = 0.0;
  double base_sumsq = 0.0;
  double theta_acc = 0.0;
  uint64_t total_steps = 0;
  for (const CostInterval& b : bounds) {
    PDX_CHECK(b.low <= b.high);
    double lo = RoundToRho(b.low, rho);
    double hi = RoundToRho(b.high, rho);
    if (hi < lo) hi = lo;
    base_sum += lo;
    base_sumsq += lo * lo;
    theta_acc += rho * hi + rho * rho / 4.0;
    uint64_t steps = static_cast<uint64_t>(std::llround((hi - lo) / rho));
    if (steps > 0) {
      wide.push_back({lo, hi, steps});
      total_steps += steps;
    }
  }

  VarianceBoundResult result;
  result.dp_states = total_steps + 1;
  result.groups = wide.size();
  result.theta = (2.0 / n) * theta_acc;

  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<double> dp(total_steps + 1, kNegInf);
  dp[0] = 0.0;
  uint64_t reach = 0;
  for (const WideInterval& w : wide) {
    const double gain = w.high * w.high - w.low * w.low;
    const uint64_t r = w.steps;
    // In-place descending update: dp[j] = max(keep-at-low, switch-to-high).
    uint64_t new_reach = reach + r;
    for (uint64_t j = new_reach; j >= r; --j) {
      double from = dp[j - r];
      if (from != kNegInf && from + gain > dp[j]) dp[j] = from + gain;
      if (j == r) break;
    }
    reach = new_reach;
  }

  double best = 0.0;
  for (uint64_t j = 0; j <= total_steps; ++j) {
    if (dp[j] == kNegInf) continue;
    double sum = base_sum + static_cast<double>(j) * rho;
    double sumsq = base_sumsq + dp[j];
    best = std::max(best, (sumsq - sum * sum / n) / n);
  }
  result.sigma2_rounded = best;
  result.upper = best + result.theta;
  result.lower = std::max(0.0, best - result.theta);
  return result;
}

double MaxVarianceBruteForce(const std::vector<CostInterval>& bounds) {
  const size_t n = bounds.size();
  PDX_CHECK(n >= 1 && n <= 24);
  double best = 0.0;
  for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
    std::vector<double> v(n);
    for (size_t i = 0; i < n; ++i) {
      v[i] = (mask >> i) & 1 ? bounds[i].high : bounds[i].low;
    }
    best = std::max(best, ExactMoments::Compute(v).variance_population);
  }
  return best;
}

namespace {

// Population variance when every value is clamped to center `mu`.
double ClampedVariance(const std::vector<CostInterval>& bounds, double mu) {
  std::vector<double> v(bounds.size());
  for (size_t i = 0; i < bounds.size(); ++i) {
    v[i] = std::clamp(mu, bounds[i].low, bounds[i].high);
  }
  return ExactMoments::Compute(v).variance_population;
}

}  // namespace

double MinVariance(const std::vector<CostInterval>& bounds) {
  PDX_CHECK(!bounds.empty());
  double lo = bounds[0].low;
  double hi = bounds[0].high;
  for (const CostInterval& b : bounds) {
    lo = std::min(lo, b.low);
    hi = std::max(hi, b.high);
  }
  if (hi <= lo) return 0.0;

  // Golden-section search (the clamped variance is unimodal in mu), then
  // refinement against interval endpoints to be safe near kinks. For
  // large inputs only the endpoints near the golden optimum matter, so
  // the refinement set is capped.
  constexpr double kInvPhi = 0.6180339887498949;
  double a = lo;
  double b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = ClampedVariance(bounds, c);
  double fd = ClampedVariance(bounds, d);
  for (int iter = 0; iter < 200 && (b - a) > 1e-10 * (hi - lo); ++iter) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = ClampedVariance(bounds, c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = ClampedVariance(bounds, d);
    }
  }
  double best = std::min(fc, fd);
  double center = fc < fd ? c : d;

  // Collect candidate endpoints, nearest to the golden optimum first.
  std::vector<double> candidates;
  candidates.reserve(2 * bounds.size());
  for (const CostInterval& iv : bounds) {
    candidates.push_back(iv.low);
    candidates.push_back(iv.high);
  }
  constexpr size_t kMaxRefinements = 512;
  if (candidates.size() > kMaxRefinements) {
    std::nth_element(candidates.begin(),
                     candidates.begin() + kMaxRefinements, candidates.end(),
                     [&](double x, double y) {
                       return std::abs(x - center) < std::abs(y - center);
                     });
    candidates.resize(kMaxRefinements);
  }
  for (double mu : candidates) {
    best = std::min(best, ClampedVariance(bounds, mu));
  }
  return best;
}

double MinVarianceBruteForce(const std::vector<CostInterval>& bounds) {
  PDX_CHECK(!bounds.empty());
  double lo = bounds[0].low;
  double hi = bounds[0].high;
  for (const CostInterval& b : bounds) {
    lo = std::min(lo, b.low);
    hi = std::max(hi, b.high);
  }
  double best = std::numeric_limits<double>::infinity();
  constexpr int kGrid = 4000;
  for (int i = 0; i <= kGrid; ++i) {
    double mu = lo + (hi - lo) * static_cast<double>(i) / kGrid;
    best = std::min(best, ClampedVariance(bounds, mu));
  }
  return best;
}

}  // namespace pdx
