#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/macros.h"

namespace pdx {

EquiDepthHistogram::EquiDepthHistogram(std::vector<double> values,
                                       size_t num_buckets) {
  PDX_CHECK(num_buckets >= 1);
  if (values.empty()) return;
  std::sort(values.begin(), values.end());
  total_count_ = static_cast<int64_t>(values.size());
  min_ = values.front();
  max_ = values.back();
  size_t buckets = std::min(num_buckets, values.size());
  boundaries_.reserve(buckets + 1);
  counts_.reserve(buckets);
  boundaries_.push_back(min_);
  size_t prev_idx = 0;
  for (size_t b = 1; b <= buckets; ++b) {
    size_t idx = (values.size() * b) / buckets;
    PDX_CHECK(idx >= 1);
    // Absorb runs of duplicates entirely: a boundary never cuts through
    // equal values, so repeated values land in one (possibly zero-width)
    // bucket and the CDF is exact at them.
    while (idx < values.size() && values[idx] == values[idx - 1]) ++idx;
    if (idx <= prev_idx) continue;  // empty bucket
    // Duplicate-heavy data may produce zero-width buckets (equal
    // consecutive boundaries); those represent point masses and make the
    // CDF exact at repeated values.
    boundaries_.push_back(values[idx - 1]);
    counts_.push_back(static_cast<int64_t>(idx - prev_idx));
    prev_idx = idx;
  }
}

double EquiDepthHistogram::CdfEstimate(double x) const {
  if (total_count_ == 0) return 0.0;
  if (x < boundaries_.front()) return 0.0;
  if (x >= boundaries_.back()) return 1.0;
  int64_t below = 0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    double lo = boundaries_[b];
    double hi = boundaries_[b + 1];
    if (x >= hi) {
      below += counts_[b];
      continue;
    }
    // Linear interpolation within the bucket; a zero-width bucket is a
    // point mass strictly above x here (x < hi == lo).
    double frac = hi > lo ? (x - lo) / (hi - lo) : 0.0;
    below += static_cast<int64_t>(std::llround(frac * static_cast<double>(counts_[b])));
    break;
  }
  return static_cast<double>(below) / static_cast<double>(total_count_);
}

double EquiDepthHistogram::RangeFraction(double lo, double hi) const {
  if (hi < lo) return 0.0;
  return std::max(0.0, CdfEstimate(hi) - CdfEstimate(lo));
}

double EquiDepthHistogram::Quantile(double p) const {
  PDX_CHECK(p >= 0.0 && p <= 1.0);
  if (total_count_ == 0) return 0.0;
  double target = p * static_cast<double>(total_count_);
  double below = 0.0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    double next = below + static_cast<double>(counts_[b]);
    if (next >= target || b + 1 == counts_.size()) {
      double lo = boundaries_[b];
      double hi = boundaries_[b + 1];
      double inside = static_cast<double>(counts_[b]);
      double frac = inside > 0.0 ? (target - below) / inside : 0.0;
      frac = std::clamp(frac, 0.0, 1.0);
      return lo + frac * (hi - lo);
    }
    below = next;
  }
  return max_;
}

std::string EquiDepthHistogram::ToString() const {
  std::ostringstream os;
  os << "EquiDepthHistogram(n=" << total_count_ << ", min=" << min_
     << ", max=" << max_ << ")\n";
  for (size_t b = 0; b < counts_.size(); ++b) {
    os << "  [" << boundaries_[b] << ", " << boundaries_[b + 1]
       << "] count=" << counts_[b] << "\n";
  }
  return os.str();
}

}  // namespace pdx
