#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace pdx {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  return true;
}

uint64_t Fnv1aHash(std::string_view s) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double v, int digits) {
  char fmt[16];
  std::snprintf(fmt, sizeof(fmt), "%%.%df", digits);
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

std::string FormatPercent(double fraction, int digits) {
  return FormatDouble(fraction * 100.0, digits) + "%";
}

}  // namespace pdx
