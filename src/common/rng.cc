#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <unordered_set>

namespace pdx {

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  PDX_CHECK(bound > 0);
  // Lemire's method: multiply-shift with rejection of the biased region.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = (0ULL - bound) % bound;
    while (lo < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  PDX_CHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  PDX_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

std::vector<uint32_t> Rng::Permutation(size_t n) {
  std::vector<uint32_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);
  Shuffle(&perm);
  return perm;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  PDX_CHECK(k <= n);
  if (k == 0) return {};
  // For dense samples a shuffle of the full index range is cheaper.
  if (k * 4 >= n) {
    std::vector<uint32_t> perm = Permutation(n);
    perm.resize(k);
    return perm;
  }
  // Floyd's algorithm: k insertions into a hash set, each guaranteed to add
  // exactly one new element.
  std::unordered_set<uint32_t> chosen;
  chosen.reserve(k * 2);
  std::vector<uint32_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    uint32_t t = static_cast<uint32_t>(NextBounded(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(static_cast<uint32_t>(j));
      out.push_back(static_cast<uint32_t>(j));
    }
  }
  return out;
}

Rng Rng::Split() { return Rng(NextUint64()); }

namespace {

struct SeedSpan {
  uint64_t length = 0;
  std::string owner;
};

struct SeedSpanRegistry {
  std::mutex mu;
  // Keyed by span start; spans are non-overlapping by construction.
  std::map<uint64_t, SeedSpan> spans;
};

SeedSpanRegistry& GlobalSeedSpanRegistry() {
  static SeedSpanRegistry* registry = new SeedSpanRegistry();
  return *registry;
}

}  // namespace

uint64_t TrialSeedBase(uint32_t bench_id, uint32_t cell) {
  PDX_CHECK_MSG(bench_id <= 0x7FFF, "bench_id exceeds 15-bit partition");
  PDX_CHECK_MSG(cell <= 0xFFFFFF, "cell exceeds 24-bit partition");
  return (1ull << 63) | (static_cast<uint64_t>(bench_id) << 48) |
         (static_cast<uint64_t>(cell) << 24);
}

bool TryClaimTrialSeedSpan(uint64_t seed_base, uint64_t trials,
                           const char* owner) {
  PDX_CHECK(trials > 0);
  PDX_CHECK_MSG(seed_base <= UINT64_MAX - (trials - 1),
                "seed span wraps past 2^64");
  PDX_CHECK(owner != nullptr);
  SeedSpanRegistry& reg = GlobalSeedSpanRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  // First span at or after seed_base, then step back one to check the
  // predecessor for overlap from the left.
  auto it = reg.spans.lower_bound(seed_base);
  if (it != reg.spans.begin()) {
    auto prev = std::prev(it);
    if (prev->first + (prev->second.length - 1) >= seed_base) {
      // Identical re-claim is deterministic replay; allow it.
      if (prev->first == seed_base && prev->second.length == trials) {
        return true;
      }
      std::fprintf(stderr,
                   "seed span collision: [%llu, +%llu) (%s) overlaps "
                   "[%llu, +%llu) (%s)\n",
                   (unsigned long long)seed_base, (unsigned long long)trials,
                   owner, (unsigned long long)prev->first,
                   (unsigned long long)prev->second.length,
                   prev->second.owner.c_str());
      return false;
    }
  }
  if (it != reg.spans.end() && it->first <= seed_base + (trials - 1)) {
    if (it->first == seed_base && it->second.length == trials) {
      return true;
    }
    std::fprintf(stderr,
                 "seed span collision: [%llu, +%llu) (%s) overlaps "
                 "[%llu, +%llu) (%s)\n",
                 (unsigned long long)seed_base, (unsigned long long)trials,
                 owner, (unsigned long long)it->first,
                 (unsigned long long)it->second.length,
                 it->second.owner.c_str());
    return false;
  }
  reg.spans.emplace(seed_base, SeedSpan{trials, owner});
  return true;
}

void ClaimTrialSeedSpan(uint64_t seed_base, uint64_t trials,
                        const char* owner) {
  PDX_CHECK_MSG(TryClaimTrialSeedSpan(seed_base, trials, owner),
                "trial seed span collides with a previously claimed span; "
                "partition bases via TrialSeedBase()");
}

void ResetClaimedTrialSeedSpansForTests() {
  SeedSpanRegistry& reg = GlobalSeedSpanRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.spans.clear();
}

}  // namespace pdx
