#include "common/obs.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <thread>

#include "common/string_util.h"

namespace pdx::obs {

namespace {

std::atomic<bool> g_timing_enabled{false};

/// Stable per-thread shard index: hashed once per thread.
size_t ThreadShard() {
  static thread_local const size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shard;
}

/// Index of the power-of-two bucket holding `v`: floor(log2(v)), clamped.
size_t BucketOf(uint64_t v) {
  if (v <= 1) return 0;
  size_t b = 63 - static_cast<size_t>(__builtin_clzll(v));
  return std::min(b, Histogram::kNumBuckets - 1);
}

}  // namespace

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool TimingEnabled() {
  return g_timing_enabled.load(std::memory_order_relaxed);
}

void SetTimingEnabled(bool on) {
  g_timing_enabled.store(on, std::memory_order_relaxed);
}

void Counter::Add(uint64_t v) {
  cells_[ThreadShard() % kShards].v.fetch_add(v, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::Reset() {
  for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

void Gauge::UpdateMax(int64_t v) {
  int64_t cur = v_.load(std::memory_order_relaxed);
  while (v > cur &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::Record(uint64_t value_ns) {
  buckets_[BucketOf(value_ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value_ns, std::memory_order_relaxed);
}

void Histogram::RecordBatch(uint64_t total_ns, uint64_t count) {
  if (count == 0) return;
  buckets_[BucketOf(total_ns / count)].fetch_add(count,
                                                 std::memory_order_relaxed);
  count_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(total_ns, std::memory_order_relaxed);
}

uint64_t Histogram::BucketUpperNs(size_t b) {
  PDX_CHECK(b < kNumBuckets);
  return (b + 1 >= 64) ? UINT64_MAX : (uint64_t{1} << (b + 1)) - 1;
}

double Histogram::Quantile(double p) const {
  PDX_CHECK(p >= 0.0 && p <= 1.0);
  // Snapshot the buckets (relaxed: concurrent Record may shift the answer
  // by the in-flight observations, which is fine for reporting).
  std::array<uint64_t, kNumBuckets> snap;
  uint64_t total = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    snap[b] = buckets_[b].load(std::memory_order_relaxed);
    total += snap[b];
  }
  if (total == 0) return 0.0;
  double target = p * static_cast<double>(total);
  double below = 0.0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    double next = below + static_cast<double>(snap[b]);
    if (next >= target || b + 1 == kNumBuckets) {
      double lo = b == 0 ? 0.0 : static_cast<double>(uint64_t{1} << b);
      double hi = static_cast<double>(BucketUpperNs(b)) + 1.0;
      double inside = static_cast<double>(snap[b]);
      double frac = inside > 0.0 ? (target - below) / inside : 0.0;
      frac = std::clamp(frac, 0.0, 1.0);
      return lo + frac * (hi - lo);
    }
    below = next;
  }
  return static_cast<double>(BucketUpperNs(kNumBuckets - 1));
}

double Histogram::MeanNs() const {
  uint64_t n = Count();
  return n > 0 ? static_cast<double>(SumNs()) / static_cast<double>(n) : 0.0;
}

void Histogram::MergeFrom(const Histogram& other) {
  for (size_t b = 0; b < kNumBuckets; ++b) {
    uint64_t v = other.buckets_[b].load(std::memory_order_relaxed);
    if (v > 0) buckets_[b].fetch_add(v, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed: metric
  return *registry;  // handles outlive static-destruction order races
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string Registry::DumpPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += StringFormat("# TYPE %s counter\n%s %llu\n", name.c_str(),
                        name.c_str(),
                        static_cast<unsigned long long>(c->Value()));
  }
  for (const auto& [name, g] : gauges_) {
    out += StringFormat("# TYPE %s gauge\n%s %lld\n", name.c_str(),
                        name.c_str(), static_cast<long long>(g->Value()));
  }
  for (const auto& [name, h] : histograms_) {
    out += StringFormat("# TYPE %s summary\n", name.c_str());
    for (double q : {0.5, 0.95, 0.99}) {
      out += StringFormat("%s{quantile=\"%.2f\"} %.0f\n", name.c_str(), q,
                          h->Quantile(q));
    }
    out += StringFormat("%s_sum %llu\n%s_count %llu\n", name.c_str(),
                        static_cast<unsigned long long>(h->SumNs()),
                        name.c_str(),
                        static_cast<unsigned long long>(h->Count()));
  }
  return out;
}

std::string Registry::DumpCsv() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "name,kind,count,value,p50_ns,p95_ns,p99_ns\n";
  for (const auto& [name, c] : counters_) {
    out += StringFormat("%s,counter,,%llu,,,\n", name.c_str(),
                        static_cast<unsigned long long>(c->Value()));
  }
  for (const auto& [name, g] : gauges_) {
    out += StringFormat("%s,gauge,,%lld,,,\n", name.c_str(),
                        static_cast<long long>(g->Value()));
  }
  for (const auto& [name, h] : histograms_) {
    out += StringFormat("%s,histogram,%llu,%llu,%.0f,%.0f,%.0f\n",
                        name.c_str(),
                        static_cast<unsigned long long>(h->Count()),
                        static_cast<unsigned long long>(h->SumNs()),
                        h->Quantile(0.5), h->Quantile(0.95),
                        h->Quantile(0.99));
  }
  return out;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  // In place: call sites cache the metric handles in static locals, so
  // the objects themselves must survive a reset.
  for (auto& [name, c] : counters_) {
    (void)name;
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    (void)name;
    g->Set(0);
  }
  for (auto& [name, h] : histograms_) {
    (void)name;
    h->Reset();
  }
}

}  // namespace pdx::obs
