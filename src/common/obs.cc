#include "common/obs.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <thread>

#include "common/string_util.h"

namespace pdx::obs {

namespace {

std::atomic<bool> g_timing_enabled{false};

/// Stable per-thread shard index: hashed once per thread.
size_t ThreadShard() {
  static thread_local const size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shard;
}

/// Index of the power-of-two bucket holding `v`: floor(log2(v)), clamped.
size_t BucketOf(uint64_t v) {
  if (v <= 1) return 0;
  size_t b = 63 - static_cast<size_t>(__builtin_clzll(v));
  return std::min(b, Histogram::kNumBuckets - 1);
}

}  // namespace

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool TimingEnabled() {
  return g_timing_enabled.load(std::memory_order_relaxed);
}

void SetTimingEnabled(bool on) {
  g_timing_enabled.store(on, std::memory_order_relaxed);
}

void Counter::Add(uint64_t v) {
  cells_[ThreadShard() % kShards].v.fetch_add(v, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::Reset() {
  for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

void Gauge::UpdateMax(int64_t v) {
  int64_t cur = v_.load(std::memory_order_relaxed);
  while (v > cur &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::Record(uint64_t value_ns) {
  buckets_[BucketOf(value_ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value_ns, std::memory_order_relaxed);
}

void Histogram::RecordBatch(uint64_t total_ns, uint64_t count) {
  if (count == 0) return;
  buckets_[BucketOf(total_ns / count)].fetch_add(count,
                                                 std::memory_order_relaxed);
  count_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(total_ns, std::memory_order_relaxed);
}

uint64_t Histogram::BucketUpperNs(size_t b) {
  PDX_CHECK(b < kNumBuckets);
  return (b + 1 >= 64) ? UINT64_MAX : (uint64_t{1} << (b + 1)) - 1;
}

double Histogram::Quantile(double p) const {
  PDX_CHECK(p >= 0.0 && p <= 1.0);
  // Snapshot the buckets (relaxed: concurrent Record may shift the answer
  // by the in-flight observations, which is fine for reporting).
  std::array<uint64_t, kNumBuckets> snap;
  uint64_t total = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    snap[b] = buckets_[b].load(std::memory_order_relaxed);
    total += snap[b];
  }
  if (total == 0) return 0.0;
  double target = p * static_cast<double>(total);
  double below = 0.0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    double next = below + static_cast<double>(snap[b]);
    if (next >= target || b + 1 == kNumBuckets) {
      double lo = b == 0 ? 0.0 : static_cast<double>(uint64_t{1} << b);
      double hi = static_cast<double>(BucketUpperNs(b)) + 1.0;
      // All samples in this one bucket: the within-bucket rank carries no
      // information (frac would just replay p), so every quantile is the
      // bucket midpoint — p99 of one observation must not report the
      // bucket's upper edge.
      if (snap[b] == total) return lo + 0.5 * (hi - lo);
      double inside = static_cast<double>(snap[b]);
      double frac = inside > 0.0 ? (target - below) / inside : 0.0;
      frac = std::clamp(frac, 0.0, 1.0);
      return lo + frac * (hi - lo);
    }
    below = next;
  }
  return static_cast<double>(BucketUpperNs(kNumBuckets - 1));
}

double Histogram::MeanNs() const {
  uint64_t n = Count();
  return n > 0 ? static_cast<double>(SumNs()) / static_cast<double>(n) : 0.0;
}

void Histogram::MergeFrom(const Histogram& other) {
  for (size_t b = 0; b < kNumBuckets; ++b) {
    uint64_t v = other.buckets_[b].load(std::memory_order_relaxed);
    if (v > 0) buckets_[b].fetch_add(v, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed: metric
  return *registry;  // handles outlive static-destruction order races
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

namespace {

/// Escapes a `# HELP` value per the Prometheus text exposition rules:
/// backslash and newline are the two characters with meaning there.
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string MetricHelp(const std::string& name) {
  static const std::map<std::string, std::string>* kHelp =
      new std::map<std::string, std::string>{
          {"pdx_whatif_calls_total", "Real what-if optimizer calls issued"},
          {"pdx_whatif_cold_ns", "Per-call latency of cold what-if calls"},
          {"pdx_whatif_signature_hit_ns",
           "Per-call latency of signature-cache hits"},
          {"pdx_whatif_exact_hit_ns",
           "Per-call latency of exact-cell cache hits"},
          {"pdx_whatif_retries_total", "What-if executor retry attempts"},
          {"pdx_whatif_timeouts_total", "What-if calls exceeding deadline"},
          {"pdx_whatif_failures_total", "What-if calls failing all retries"},
          {"pdx_whatif_degraded_cells_total",
           "Cells degraded to Section-6 cost bounds"},
          {"pdx_cache_exact_cold_total", "Exact-cell cache misses"},
          {"pdx_cache_exact_hit_total", "Exact-cell cache hits"},
          {"pdx_cache_sig_cold_total", "Signature cache cold fills"},
          {"pdx_cache_sig_signature_hit_total",
           "Signature cache structure-signature hits"},
          {"pdx_cache_sig_exact_hit_total", "Signature cache exact hits"},
          {"pdx_selector_runs_total", "Selection runs started"},
          {"pdx_selector_rounds_total", "Selection-loop rounds executed"},
          {"pdx_selector_eliminations_total",
           "Configurations frozen by elimination"},
          {"pdx_selector_splits_total", "Stratification splits accepted"},
          {"pdx_selector_run_ns", "End-to-end selection run latency"},
          {"pdx_strat_split_search_ns", "Algorithm-2 split-search latency"},
          {"pdx_estimator_samples_total", "Samples folded into estimators"},
          {"pdx_pool_jobs_total", "ThreadPool jobs executed"},
          {"pdx_pool_chunks_total", "ThreadPool chunks executed"},
          {"pdx_pool_busy_ns_total", "Cumulative worker busy time"},
          {"pdx_pool_queue_depth", "Current ThreadPool queue depth"},
          {"pdx_pool_threads", "Configured ThreadPool worker count"},
          {"pdx_pool_job_ns", "Per-job ThreadPool latency"},
          {"pdx_budget_bound_calls_total",
           "Section-6.1 bound-refinement derivations"},
          {"pdx_budget_refine_rounds_total", "Rounds choosing refinement"},
          {"pdx_budget_refined_queries_total", "Queries bound-refined"},
          {"pdx_budget_dominance_eliminations_total",
           "Configurations eliminated by interval dominance"},
          {"pdx_budget_refine_halts_total",
           "Runs halting refinement by the separability projection"},
          {"pdx_fault_injected_failures_total", "Injected what-if failures"},
          {"pdx_fault_injected_slow_total", "Injected what-if latency spikes"},
          {"pdx_tuner_rounds_total", "Greedy tuner rounds executed"},
          {"pdx_tuner_structures_added_total",
           "Structures accepted by the greedy tuner"},
          {"pdx_tuner_round_ns", "Per-round greedy tuner latency"},
          {"pdx_exporter_requests_total",
           "HTTP requests served by pdx_tool serve-metrics"},
      };
  auto it = kHelp->find(name);
  if (it != kHelp->end()) return it->second;
  return "pdexplore metric " + name + " (see src/common/obs.h)";
}

std::string Registry::DumpPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += StringFormat("# HELP %s %s\n# TYPE %s counter\n%s %llu\n",
                        name.c_str(), EscapeHelp(MetricHelp(name)).c_str(),
                        name.c_str(), name.c_str(),
                        static_cast<unsigned long long>(c->Value()));
  }
  for (const auto& [name, g] : gauges_) {
    out += StringFormat("# HELP %s %s\n# TYPE %s gauge\n%s %lld\n",
                        name.c_str(), EscapeHelp(MetricHelp(name)).c_str(),
                        name.c_str(), name.c_str(),
                        static_cast<long long>(g->Value()));
  }
  for (const auto& [name, h] : histograms_) {
    out += StringFormat("# HELP %s %s\n# TYPE %s summary\n", name.c_str(),
                        EscapeHelp(MetricHelp(name)).c_str(), name.c_str());
    for (double q : {0.5, 0.95, 0.99}) {
      out += StringFormat("%s{quantile=\"%.2f\"} %.0f\n", name.c_str(), q,
                          h->Quantile(q));
    }
    out += StringFormat("%s_sum %llu\n%s_count %llu\n", name.c_str(),
                        static_cast<unsigned long long>(h->SumNs()),
                        name.c_str(),
                        static_cast<unsigned long long>(h->Count()));
  }
  return out;
}

std::vector<Registry::Sample> Registry::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  for (const auto& [name, c] : counters_) {
    out.push_back({name, "counter", static_cast<double>(c->Value())});
  }
  for (const auto& [name, g] : gauges_) {
    out.push_back({name, "gauge", static_cast<double>(g->Value())});
  }
  for (const auto& [name, h] : histograms_) {
    out.push_back(
        {name + "_count", "histogram", static_cast<double>(h->Count())});
    out.push_back(
        {name + "_sum", "histogram", static_cast<double>(h->SumNs())});
  }
  return out;
}

std::string Registry::DumpCsv() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "name,kind,count,value,p50_ns,p95_ns,p99_ns\n";
  for (const auto& [name, c] : counters_) {
    out += StringFormat("%s,counter,,%llu,,,\n", name.c_str(),
                        static_cast<unsigned long long>(c->Value()));
  }
  for (const auto& [name, g] : gauges_) {
    out += StringFormat("%s,gauge,,%lld,,,\n", name.c_str(),
                        static_cast<long long>(g->Value()));
  }
  for (const auto& [name, h] : histograms_) {
    out += StringFormat("%s,histogram,%llu,%llu,%.0f,%.0f,%.0f\n",
                        name.c_str(),
                        static_cast<unsigned long long>(h->Count()),
                        static_cast<unsigned long long>(h->SumNs()),
                        h->Quantile(0.5), h->Quantile(0.95),
                        h->Quantile(0.99));
  }
  return out;
}

Status WriteMetricsDump(const std::string& spec) {
  std::string dump;
  std::string path;
  if (spec.empty() || spec == "prom") {
    dump = Registry::Global().DumpPrometheus();
  } else if (spec == "csv") {
    dump = Registry::Global().DumpCsv();
  } else if (spec.rfind("csv:", 0) == 0) {
    path = spec.substr(4);
    if (path.empty()) {
      return Status::InvalidArgument("--metrics=csv: requires a path");
    }
    dump = Registry::Global().DumpCsv();
  } else {
    path = spec;
    dump = Registry::Global().DumpPrometheus();
  }
  if (path.empty()) {
    std::fwrite(dump.data(), 1, dump.size(), stdout);
    return Status::OK();
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open metrics file '" + path +
                           "' for write");
  }
  std::fwrite(dump.data(), 1, dump.size(), f);
  const bool write_error = std::ferror(f) != 0;
  std::fclose(f);
  if (write_error) {
    return Status::IOError("write error on metrics file '" + path + "'");
  }
  std::printf("metrics written to %s\n", path.c_str());
  return Status::OK();
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  // In place: call sites cache the metric handles in static locals, so
  // the objects themselves must survive a reset.
  for (auto& [name, c] : counters_) {
    (void)name;
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    (void)name;
    g->Set(0);
  }
  for (auto& [name, h] : histograms_) {
    (void)name;
    h->Reset();
  }
}

}  // namespace pdx::obs
