#include "common/run_ledger.h"

#include <dirent.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>

#include "common/string_util.h"

namespace pdx {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// First-match scalar extraction, same contract as the trace reader:
/// `needle` includes quotes and colon so "name" never matches "rename".
const char* FindValue(const std::string& line, const char* needle) {
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return nullptr;
  return line.c_str() + pos + std::strlen(needle);
}

bool GetUint(const std::string& line, const char* needle, uint64_t* out) {
  const char* v = FindValue(line, needle);
  if (v == nullptr) return false;
  *out = std::strtoull(v, nullptr, 10);
  return true;
}

bool GetDouble(const std::string& line, const char* needle, double* out) {
  const char* v = FindValue(line, needle);
  if (v == nullptr) return false;
  *out = std::strtod(v, nullptr);
  return true;
}

/// Unescapes the \", \\, \n, \t the writer produces. Stops at the first
/// unescaped closing quote.
bool GetString(const std::string& line, const char* needle,
               std::string* out) {
  const char* v = FindValue(line, needle);
  if (v == nullptr || *v != '"') return false;
  ++v;
  out->clear();
  for (; *v != '\0'; ++v) {
    if (*v == '"') return true;
    if (*v == '\\' && v[1] != '\0') {
      ++v;
      switch (*v) {
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        default:
          out->push_back(*v);
      }
    } else {
      out->push_back(*v);
    }
  }
  return false;  // unterminated string
}

std::string JsonDouble(double v) {
  if (!(v == v) || v > 1.79e308 || v < -1.79e308) return "0";
  return StringFormat("%.17g", v);
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

std::string GitDescribe() {
  std::FILE* p = ::popen("git describe --always --dirty 2>/dev/null", "r");
  if (p == nullptr) return "unknown";
  char buf[256];
  std::string out;
  if (std::fgets(buf, sizeof(buf), p) != nullptr) out = buf;
  ::pclose(p);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

RunManifest BuildRunManifest(const std::string& tool, const std::string& flags,
                             uint64_t seed, double wall_ms,
                             const obs::SpanSnapshot& spans) {
  RunManifest m;
  m.tool = tool;
  m.flags = flags;
  m.seed = seed;
  m.wall_ms = wall_ms;
  m.git = GitDescribe();
  m.started_unix_ms = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  m.spans_dropped = spans.dropped;
  m.counters = obs::Registry::Global().Samples();
  m.phases = obs::RollupSpans(spans.records);
  return m;
}

std::string ManifestToJson(const RunManifest& m) {
  std::string out = "{\n";
  out += StringFormat("\"tool\":\"%s\",\n", JsonEscape(m.tool).c_str());
  out += StringFormat("\"git\":\"%s\",\n", JsonEscape(m.git).c_str());
  out += StringFormat("\"started_unix_ms\":%llu,\n",
                      static_cast<unsigned long long>(m.started_unix_ms));
  out += StringFormat("\"wall_ms\":%s,\n", JsonDouble(m.wall_ms).c_str());
  out += StringFormat("\"seed\":%llu,\n",
                      static_cast<unsigned long long>(m.seed));
  out += StringFormat("\"spans_dropped\":%llu,\n",
                      static_cast<unsigned long long>(m.spans_dropped));
  out += StringFormat("\"flags\":\"%s\",\n", JsonEscape(m.flags).c_str());
  out += "\"counters\":[\n";
  for (size_t i = 0; i < m.counters.size(); ++i) {
    const obs::Registry::Sample& s = m.counters[i];
    out += StringFormat("{\"name\":\"%s\",\"kind\":\"%s\",\"value\":%s}%s\n",
                        JsonEscape(s.name).c_str(), s.kind.c_str(),
                        JsonDouble(s.value).c_str(),
                        i + 1 == m.counters.size() ? "" : ",");
  }
  out += "],\n\"phases\":[\n";
  for (size_t i = 0; i < m.phases.size(); ++i) {
    const obs::SpanRollupRow& p = m.phases[i];
    out += StringFormat(
        "{\"cat\":\"%s\",\"name\":\"%s\",\"count\":%llu,\"total_ns\":%llu,"
        "\"delta\":%llu}%s\n",
        JsonEscape(p.category).c_str(), JsonEscape(p.name).c_str(),
        static_cast<unsigned long long>(p.count),
        static_cast<unsigned long long>(p.total_ns),
        static_cast<unsigned long long>(p.counter_delta),
        i + 1 == m.phases.size() ? "" : ",");
  }
  out += "]\n}\n";
  return out;
}

Result<RunManifest> ParseManifestJson(const std::string& json,
                                      const std::string& origin) {
  RunManifest m;
  m.git.clear();
  size_t pos = 0;
  bool saw_tool = false;
  while (pos < json.size()) {
    size_t end = json.find('\n', pos);
    if (end == std::string::npos) end = json.size();
    std::string line = json.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    // Entry lines before top-level scalars: a phase row also carries
    // "name", and a counter row also carries "value".
    if (line.rfind("{\"cat\":", 0) == 0) {
      obs::SpanRollupRow row;
      GetString(line, "\"cat\":", &row.category);
      GetString(line, "\"name\":", &row.name);
      GetUint(line, "\"count\":", &row.count);
      GetUint(line, "\"total_ns\":", &row.total_ns);
      GetUint(line, "\"delta\":", &row.counter_delta);
      m.phases.push_back(std::move(row));
    } else if (line.rfind("{\"name\":", 0) == 0) {
      obs::Registry::Sample s;
      GetString(line, "\"name\":", &s.name);
      GetString(line, "\"kind\":", &s.kind);
      GetDouble(line, "\"value\":", &s.value);
      m.counters.push_back(std::move(s));
    } else {
      if (GetString(line, "\"tool\":", &m.tool)) saw_tool = true;
      GetString(line, "\"git\":", &m.git);
      GetString(line, "\"flags\":", &m.flags);
      GetUint(line, "\"started_unix_ms\":", &m.started_unix_ms);
      GetDouble(line, "\"wall_ms\":", &m.wall_ms);
      GetUint(line, "\"seed\":", &m.seed);
      GetUint(line, "\"spans_dropped\":", &m.spans_dropped);
    }
  }
  if (!saw_tool) {
    return Status::InvalidArgument("'" + origin +
                                   "' is not a run manifest (no \"tool\")");
  }
  if (m.git.empty()) m.git = "unknown";
  return m;
}

Result<RunManifest> ReadManifest(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open manifest '" + path + "'");
  }
  std::string json;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) json.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IOError("read error on manifest '" + path + "'");
  }
  return ParseManifestJson(json, path);
}

Result<std::string> WriteManifest(const RunManifest& m,
                                  const std::string& dir) {
  // Concurrent sessions in the serve daemon write manifests from many
  // threads; serialize name selection + rename so two sessions started
  // in the same millisecond cannot claim the same path.
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create ledger directory '" + dir + "'");
  }
  std::string base = StringFormat(
      "%s/%llu-%s", dir.c_str(),
      static_cast<unsigned long long>(m.started_unix_ms), m.tool.c_str());
  std::string path = base + ".json";
  for (int i = 2; FileExists(path); ++i) {
    path = base + StringFormat("-%d.json", i);
  }
  // Write-then-rename so a crash mid-write can never leave a torn
  // manifest at a .json name: ListManifestFiles only picks up *.json,
  // and rename() within one directory is atomic. The temp carries the
  // pid so concurrent writers (the serve daemon's sessions) never
  // collide on it.
  std::string tmp =
      path + StringFormat(".tmp-%d", static_cast<int>(::getpid()));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open manifest '" + tmp + "' for write");
  }
  std::string json = ManifestToJson(m);
  std::fwrite(json.data(), 1, json.size(), f);
  bool write_error = std::ferror(f) != 0;
  if (std::fflush(f) != 0) write_error = true;
  std::fclose(f);
  if (!write_error && std::rename(tmp.c_str(), path.c_str()) != 0) {
    write_error = true;
  }
  if (write_error) {
    std::remove(tmp.c_str());
    return Status::IOError("write error on manifest '" + path + "'");
  }
  return path;
}

Result<std::vector<std::string>> ListManifestFiles(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::NotFound("no ledger directory '" + dir + "'");
  }
  std::vector<std::string> files;
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.size() > 5 && name.rfind(".json") == name.size() - 5) {
      files.push_back(std::move(name));
    }
  }
  ::closedir(d);
  std::sort(files.begin(), files.end());
  return files;
}

Result<std::string> ResolveManifestRef(const std::string& ref,
                                       const std::string& dir) {
  if (FileExists(ref)) return ref;
  auto files = ListManifestFiles(dir);
  if (!files.ok()) return files.status();
  std::vector<std::string> matches;
  for (const std::string& f : files.value()) {
    if (f == ref) return dir + "/" + f;
    if (f.rfind(ref, 0) == 0) matches.push_back(f);
  }
  if (matches.size() == 1) return dir + "/" + matches[0];
  if (matches.empty()) {
    return Status::NotFound("no ledger entry matching '" + ref + "' in '" +
                            dir + "'");
  }
  return Status::InvalidArgument(
      StringFormat("'%s' is ambiguous: %zu ledger entries match (e.g. %s, %s)",
                   ref.c_str(), matches.size(), matches[0].c_str(),
                   matches[1].c_str()));
}

std::vector<LedgerDiffRow> DiffManifests(const RunManifest& a,
                                         const RunManifest& b) {
  std::vector<LedgerDiffRow> rows;
  // Phases: union over both runs, in milliseconds.
  std::map<std::string, std::pair<double, double>> phases;
  for (const obs::SpanRollupRow& p : a.phases) {
    phases[p.category + "/" + p.name].first =
        static_cast<double>(p.total_ns) / 1e6;
  }
  for (const obs::SpanRollupRow& p : b.phases) {
    phases[p.category + "/" + p.name].second =
        static_cast<double>(p.total_ns) / 1e6;
  }
  std::vector<LedgerDiffRow> phase_rows;
  for (const auto& [key, ab] : phases) {
    phase_rows.push_back(
        {"phase", key, ab.first, ab.second, ab.second - ab.first});
  }
  // Counters: only the ones that moved.
  std::map<std::string, std::pair<double, double>> counters;
  for (const obs::Registry::Sample& s : a.counters) {
    counters[s.name].first = s.value;
  }
  for (const obs::Registry::Sample& s : b.counters) {
    counters[s.name].second = s.value;
  }
  std::vector<LedgerDiffRow> counter_rows;
  for (const auto& [key, ab] : counters) {
    if (ab.first == ab.second) continue;
    counter_rows.push_back(
        {"counter", key, ab.first, ab.second, ab.second - ab.first});
  }
  auto by_abs_delta = [](const LedgerDiffRow& x, const LedgerDiffRow& y) {
    double ax = std::fabs(x.delta), ay = std::fabs(y.delta);
    if (ax != ay) return ax > ay;
    return x.key < y.key;
  };
  std::sort(phase_rows.begin(), phase_rows.end(), by_abs_delta);
  std::sort(counter_rows.begin(), counter_rows.end(), by_abs_delta);
  rows.reserve(phase_rows.size() + counter_rows.size());
  rows.insert(rows.end(), phase_rows.begin(), phase_rows.end());
  rows.insert(rows.end(), counter_rows.begin(), counter_rows.end());
  return rows;
}

std::string FormatLedgerDiff(const RunManifest& a, const RunManifest& b,
                             const std::vector<LedgerDiffRow>& rows) {
  std::string out = StringFormat(
      "A: %s (git %s, seed %llu)\nB: %s (git %s, seed %llu)\n"
      "wall_ms: %.1f -> %.1f (%+.1f)\n",
      a.tool.c_str(), a.git.c_str(), static_cast<unsigned long long>(a.seed),
      b.tool.c_str(), b.git.c_str(), static_cast<unsigned long long>(b.seed),
      a.wall_ms, b.wall_ms, b.wall_ms - a.wall_ms);
  bool phase_header = false, counter_header = false;
  for (const LedgerDiffRow& r : rows) {
    if (r.kind == "phase") {
      if (!phase_header) {
        out += StringFormat("%-36s %12s %12s %12s\n", "phase", "A_ms", "B_ms",
                            "delta_ms");
        phase_header = true;
      }
      out += StringFormat("%-36s %12.2f %12.2f %+12.2f\n", r.key.c_str(), r.a,
                          r.b, r.delta);
    } else {
      if (!counter_header) {
        out += StringFormat("%-36s %12s %12s %12s\n", "counter", "A", "B",
                            "delta");
        counter_header = true;
      }
      out += StringFormat("%-36s %12.0f %12.0f %+12.0f\n", r.key.c_str(), r.a,
                          r.b, r.delta);
    }
  }
  if (!phase_header) out += "(no span phases recorded in either run)\n";
  if (!counter_header) out += "(no counters moved)\n";
  return out;
}

}  // namespace pdx
