// Copyright (c) the pdexplore authors.
// The run ledger (ISSUE 8): every bench and pdx_tool compare|tune run can
// append a small JSON manifest — git revision, seed, flags, final registry
// counters, per-phase span rollup — under a ledger directory (runs/ by
// default). `pdx_tool runs list` enumerates them and `pdx_tool runs diff
// A B` turns two manifests into a regression-attribution table: which
// phase or counter moved, by how much, ranked by wall-clock delta. The
// point is that "this got slower" becomes "the what-if phase got 45 ms
// slower while everything else held still" without re-running anything.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/obs.h"
#include "common/span.h"
#include "common/status.h"

namespace pdx {

/// One recorded run. `counters` snapshots the metric registry at the end
/// of the run; `phases` is the span rollup (obs::RollupSpans) of the
/// run's drained spans.
struct RunManifest {
  std::string tool;           // "compare", "tune", "bench_micro", ...
  std::string git = "unknown";  // git describe --always --dirty
  std::string flags;          // the command line after the tool name
  uint64_t started_unix_ms = 0;
  double wall_ms = 0.0;
  uint64_t seed = 0;
  uint64_t spans_dropped = 0;
  std::vector<obs::Registry::Sample> counters;
  std::vector<obs::SpanRollupRow> phases;
};

/// `git describe --always --dirty` of the working tree, "unknown" when
/// git is unavailable (not a repo, no binary).
std::string GitDescribe();

/// Assembles a manifest from the process state: git revision, wall-clock
/// time-of-day, the registry snapshot, and the rollup of `spans`.
RunManifest BuildRunManifest(const std::string& tool, const std::string& flags,
                             uint64_t seed, double wall_ms,
                             const obs::SpanSnapshot& spans);

/// The manifest's JSON form: one object, one entry per line (the reader
/// is line-oriented, like the JSONL trace reader).
std::string ManifestToJson(const RunManifest& m);

/// Parses a manifest written by ManifestToJson.
Result<RunManifest> ParseManifestJson(const std::string& json,
                                      const std::string& origin);

/// Reads one manifest file.
Result<RunManifest> ReadManifest(const std::string& path);

/// Writes `m` under `dir` (created if missing) as
/// <started_unix_ms>-<tool>.json, suffixed -2, -3... on collision.
/// Returns the path written.
Result<std::string> WriteManifest(const RunManifest& m,
                                  const std::string& dir);

/// The *.json entries of a ledger directory, name-sorted (the
/// <timestamp>-<tool> naming makes that chronological).
Result<std::vector<std::string>> ListManifestFiles(const std::string& dir);

/// Resolves a `runs diff` operand: an existing path is used as-is;
/// otherwise it must match exactly one ledger entry by full name or
/// unique prefix.
Result<std::string> ResolveManifestRef(const std::string& ref,
                                       const std::string& dir);

/// One attribution row of a ledger diff.
struct LedgerDiffRow {
  std::string kind;  // "phase" | "counter"
  std::string key;   // "selector/whatif" or the counter name
  double a = 0.0;    // phase: milliseconds; counter: value
  double b = 0.0;
  double delta = 0.0;  // b - a, the ranking key (absolute, descending)
};

/// Phases first (every phase present in either run, ranked by absolute
/// wall-clock delta), then the counters that moved (ranked by absolute
/// delta). Deterministic: ties break on the key.
std::vector<LedgerDiffRow> DiffManifests(const RunManifest& a,
                                         const RunManifest& b);

/// Renders the regression-attribution table for `pdx_tool runs diff`.
std::string FormatLedgerDiff(const RunManifest& a, const RunManifest& b,
                             const std::vector<LedgerDiffRow>& rows);

}  // namespace pdx
