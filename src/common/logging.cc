#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pdx {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

// Serializes log emission: concurrent ThreadPool workers must not
// interleave fragments of their lines.
std::mutex g_log_mu;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      g_min_level.load(std::memory_order_relaxed)) {
    // Assemble the complete line (including the newline) before taking
    // the lock, then emit it with a single write.
    std::string msg = stream_.str();
    msg.push_back('\n');
    std::lock_guard<std::mutex> lock(g_log_mu);
    std::fwrite(msg.data(), 1, msg.size(), stderr);
    std::fflush(stderr);
  }
}

}  // namespace internal
}  // namespace pdx
