// Copyright (c) the pdexplore authors.
// Internal assertion and convenience macros.
#pragma once

#include <cstdio>
#include <cstdlib>

/// Aborts with a message when an internal invariant is violated. Active in
/// all build types: the library's statistical guarantees depend on these
/// invariants, so silently continuing would corrupt results.
#define PDX_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "PDX_CHECK failed: %s at %s:%d\n", #cond,         \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define PDX_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "PDX_CHECK failed: %s (%s) at %s:%d\n", #cond,    \
                   (msg), __FILE__, __LINE__);                               \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Propagates a non-ok Status from an expression returning Status.
#define PDX_RETURN_IF_ERROR(expr)                                            \
  do {                                                                       \
    ::pdx::Status _st = (expr);                                              \
    if (!_st.ok()) return _st;                                               \
  } while (0)

#define PDX_DISALLOW_COPY(TypeName)                                          \
  TypeName(const TypeName&) = delete;                                        \
  TypeName& operator=(const TypeName&) = delete
