// Copyright (c) the pdexplore authors.
// A fixed-size thread pool with a blocking parallel-for, used to fan out
// the embarrassingly-parallel hot paths of the experiment harness: dense
// cost-matrix precomputation, exact-total evaluation and Monte-Carlo
// trials. The pool is deliberately minimal — one job at a time, the
// submitting thread participates in the work, and nested ParallelFor calls
// degrade to serial execution instead of deadlocking.
//
// Determinism contract: ParallelFor only changes *which thread* executes an
// index range, never the work done for an index. Callers that write each
// result into its own slot (and derive any per-item RNG seed from the item
// index) therefore produce bit-identical output at every thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace pdx {

/// Adds `v` to `*a` with a relaxed compare-exchange loop. Used for
/// floating-point counters (e.g. weighted optimizer calls) that are
/// accumulated from several threads. Note: the accumulation order — and
/// hence the last-ulp rounding — depends on thread interleaving.
inline void AtomicAddDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

/// Fixed-size pool of worker threads executing one blocking parallel-for
/// at a time. A pool of size N runs work on N threads total: N-1 workers
/// plus the thread that called ParallelFor.
class ThreadPool {
 public:
  /// `num_threads` is the total parallelism (>= 1). Size 1 spawns no
  /// workers; every ParallelFor runs inline on the calling thread.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  PDX_DISALLOW_COPY(ThreadPool);

  size_t num_threads() const { return workers_.size() + 1; }

  /// Invokes `fn(chunk_begin, chunk_end)` over a partition of
  /// [begin, end) into chunks of at most `chunk` indices, on up to
  /// num_threads() threads, and blocks until every chunk has run.
  /// `chunk` == 0 picks a chunk size automatically (~4 chunks per
  /// thread). The first exception thrown by `fn` is rethrown here after
  /// the remaining chunks have been cancelled.
  ///
  /// Nested-use guard: when called from inside a ParallelFor body — on a
  /// worker thread of any ThreadPool, or on the submitting thread while
  /// it executes its share of chunks — the loop runs serially inline
  /// (handing chunks back to a busy pool would deadlock). Concurrent
  /// calls from several non-worker threads are serialized internally.
  void ParallelFor(size_t begin, size_t end, size_t chunk,
                   const std::function<void(size_t, size_t)>& fn);

  /// True when the calling thread is a worker thread of some ThreadPool
  /// (i.e. a ParallelFor body is executing on it).
  static bool InWorker();

 private:
  void WorkerLoop();
  /// Pulls and runs chunks of the current job until the cursor passes
  /// `end_`; records the first exception and cancels the rest.
  void RunChunks();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  uint64_t generation_ = 0;  // bumped per job, under mu_
  bool shutdown_ = false;
  size_t workers_active_ = 0;  // workers not yet done with the current job

  // Current job. Written under mu_ before the generation bump; read by
  // workers after they observe the new generation under mu_.
  size_t end_ = 0;
  size_t chunk_ = 1;
  const std::function<void(size_t, size_t)>* fn_ = nullptr;
  std::atomic<size_t> cursor_{0};
  std::exception_ptr error_;

  // Serializes submitters so only one job is in flight.
  std::mutex submit_mu_;
};

/// The process-wide pool the library's parallel paths use. Sized, in
/// order of precedence, by the last SetGlobalThreadCount() call, the
/// PDX_THREADS environment variable, and std::thread::hardware_concurrency.
ThreadPool& GlobalThreadPool();

/// Re-sizes the global pool (0 = hardware concurrency). Must not be
/// called while a ParallelFor on the global pool is in flight. Tools
/// call this from a --threads=N flag before starting work.
void SetGlobalThreadCount(size_t n);

/// Thread count of the global pool (without instantiating workers early:
/// reports the configured size even before first use).
size_t GlobalThreadCount();

}  // namespace pdx
