// Copyright (c) the pdexplore authors.
// Small string helpers shared by the SQL renderer / signature parser and
// the bench output formatting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pdx {

/// Splits on a single character; empty pieces are kept.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Trims ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

/// ASCII lower-casing.
std::string ToLowerAscii(std::string_view s);

/// True if `s` begins with `prefix` (case-insensitive ASCII).
bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);

/// FNV-1a 64-bit hash, used for query-template signatures.
uint64_t Fnv1aHash(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats `v` with `digits` decimal places.
std::string FormatDouble(double v, int digits);

/// Formats a fraction as a percentage string, e.g. 0.123 -> "12.3%".
std::string FormatPercent(double fraction, int digits = 1);

}  // namespace pdx
