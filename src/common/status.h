// Copyright (c) the pdexplore authors.
// Status / Result<T> error handling, RocksDB/Arrow style. The library does
// not throw exceptions across its public API; fallible operations return a
// Status or a Result<T>.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "common/macros.h"

namespace pdx {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kInternal,
  kUnimplemented,
};

/// Returns a short human-readable name for a StatusCode ("OK", "NotFound"...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error value. Cheap to copy in the success case
/// (no allocation); error cases carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error wrapper. Accessing the value of an error Result aborts,
/// so callers must check ok() (or use ValueOr).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (error).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    PDX_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    PDX_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    PDX_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    PDX_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if this holds an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pdx
