// Copyright (c) the pdexplore authors.
// Numerically stable incremental moment accumulators. Algorithm 1 updates
// estimator means/variances after *every* sampled query, so all statistics
// here are O(1) per observation (Welford / Pébay update formulas).
#pragma once

#include <cstdint>
#include <vector>

namespace pdx {

/// Kahan-compensated summation for long low-magnitude-tail cost sums.
class KahanSum {
 public:
  void Add(double x);
  double Total() const { return sum_ + compensation_; }
  void Reset() { sum_ = compensation_ = 0.0; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Running mean / variance / skewness via Welford–Pébay updates.
/// Tracks up to the third central moment, which the CLT-applicability check
/// (Cochran's rule, paper eq. 9) needs for Fisher's G1.
class RunningMoments {
 public:
  RunningMoments() = default;
  /// Assembles an accumulator from its stored components (used by the
  /// SoA moment arrays to materialize one cell for scalar Merge paths).
  RunningMoments(int64_t n, double mean, double m2, double m3)
      : n_(n), mean_(mean), m2_(m2), m3_(m3) {}

  void Add(double x);
  /// Removes one previously-added observation. Exact arithmetic inverse of
  /// Add for the first two moments (used when a stratum is re-split); the
  /// third moment is recomputed by callers that need it after removal.
  void Remove(double x);

  int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance (divide by n).
  double variance_population() const;
  /// Sample variance (divide by n-1); 0 when n < 2.
  double variance_sample() const;
  double stddev_sample() const;
  /// Fisher's skewness G1 = m3 / m2^(3/2) (population form); 0 when
  /// undefined (n < 2 or zero variance).
  double skewness() const;
  double sum() const { return mean_ * static_cast<double>(n_); }

  void Reset();

  /// Merges another accumulator into this one (parallel Pébay merge).
  void Merge(const RunningMoments& other);

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
};

/// Running covariance of paired observations (x, y). Delta Sampling's
/// advantage is exactly Cov(cost in C_l, cost in C_j) > 0 (paper §4.2);
/// this accumulator lets tests and the ablation bench measure it directly.
class RunningCovariance {
 public:
  void Add(double x, double y);

  int64_t count() const { return n_; }
  double mean_x() const { return mean_x_; }
  double mean_y() const { return mean_y_; }
  /// Sample covariance (divide by n-1); 0 when n < 2.
  double covariance_sample() const;
  double variance_x_sample() const;
  double variance_y_sample() const;
  /// Pearson correlation; 0 when undefined.
  double correlation() const;

  void Reset();

 private:
  int64_t n_ = 0;
  double mean_x_ = 0.0;
  double mean_y_ = 0.0;
  double m2_x_ = 0.0;
  double m2_y_ = 0.0;
  double cxy_ = 0.0;
};

/// Exact (two-pass) population moments of a finite vector; reference
/// implementation used by tests and by the Monte-Carlo harness where the
/// full cost column is materialized anyway.
struct ExactMoments {
  double mean = 0.0;
  double variance_population = 0.0;
  double variance_sample = 0.0;
  double skewness = 0.0;  // Fisher G1, population form
  double min = 0.0;
  double max = 0.0;

  static ExactMoments Compute(const std::vector<double>& values);
};

}  // namespace pdx
