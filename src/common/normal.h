// Copyright (c) the pdexplore authors.
// Standard-normal distribution functions. The Pr(CS) machinery of the paper
// reduces every confidence statement to a normal tail probability, so these
// are the statistical workhorses of the library.
#pragma once

namespace pdx {

/// Standard normal density phi(x).
double NormalPdf(double x);

/// Standard normal CDF Phi(x), accurate to ~1e-15 (erf-based).
double NormalCdf(double x);

/// Upper tail 1 - Phi(x), computed without cancellation for large x.
double NormalSf(double x);

/// Inverse standard normal CDF (quantile). `p` must lie in (0, 1).
/// Acklam's rational approximation refined by one Halley step; absolute
/// error below 1e-12 over (1e-300, 1 - 1e-16).
double NormalQuantile(double p);

/// Two-sided coverage Phi(z) - Phi(-z) for z >= 0.
double NormalCoverage(double z);

}  // namespace pdx
