// Copyright (c) the pdexplore authors.
// Process-wide observability primitives: sharded counters, gauges and
// fixed-bucket latency histograms behind a named registry, plus the
// monotonic clock every wall-clock report in the repository shares.
//
// Design constraints (ISSUE 3):
//   * Counters/gauges are always on — one relaxed atomic add on a
//     thread-hashed cache-line-padded cell, cheap enough for the what-if
//     hot path (~ns against a ~us optimizer call).
//   * Anything that needs a clock read (latency histograms, scoped
//     timers) is gated on a single global flag, off by default, so a run
//     without --trace/--metrics pays one relaxed load + branch per site.
//   * Histograms use fixed power-of-two nanosecond buckets; quantiles
//     (p50/p95/p99) are bucket-interpolated. Recording is a relaxed add
//     into one atomic bucket — safe from any thread.
//
// Naming convention: `pdx_<subsystem>_<what>[_total|_ns]`, mirroring
// Prometheus idiom; Registry::DumpPrometheus() emits the standard text
// exposition format and DumpCsv() a flat summary for spreadsheets.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace pdx::obs {

/// Monotonic nanoseconds (steady clock). The single time source shared by
/// the library's instrumentation and the bench harness, so the two can
/// never drift apart.
uint64_t NowNs();

/// A started monotonic stopwatch. Trivially copyable; replaces the
/// steady_clock::time_point plumbing in the bench harness.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(NowNs()) {}

  uint64_t ElapsedNs() const { return NowNs() - start_ns_; }
  double Seconds() const {
    return static_cast<double>(ElapsedNs()) / 1e9;
  }
  uint64_t start_ns() const { return start_ns_; }

 private:
  uint64_t start_ns_;
};

/// Global gate for clock-reading instrumentation (latency histograms and
/// scoped timers). Off by default; tools flip it on for --trace/--metrics.
bool TimingEnabled();
void SetTimingEnabled(bool on);

/// Monotonically increasing event counter, sharded over cache-line-padded
/// cells hashed by thread id so concurrent ThreadPool workers do not
/// contend on one line.
class Counter {
 public:
  Counter() = default;
  PDX_DISALLOW_COPY(Counter);

  void Add(uint64_t v = 1);
  uint64_t Value() const;
  /// Zeroes all shards. Not atomic against concurrent Add — callers must
  /// quiesce writers (tests and bench A/B sections do).
  void Reset();

 private:
  static constexpr size_t kShards = 16;
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::array<Cell, kShards> cells_;
};

/// Last-write-wins signed gauge (e.g. configured thread count, current
/// queue depth). Add() supports concurrent up/down ticking.
class Gauge {
 public:
  Gauge() = default;
  PDX_DISALLOW_COPY(Gauge);

  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  /// Sets v if it exceeds the current value (racy max — fine for
  /// high-watermark reporting).
  void UpdateMax(int64_t v);

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket latency histogram over uint64 nanosecond observations.
/// Bucket b holds values in [2^b, 2^(b+1)) ns (bucket 0 also takes 0);
/// 48 buckets cover up to ~78 hours. Quantiles interpolate linearly
/// inside the winning bucket, which is accurate to the bucket's factor-2
/// width — plenty for p50/p95/p99 latency reporting. When every sample
/// landed in a single bucket the interpolation has no information to
/// spread on, so all quantiles report that bucket's midpoint instead of
/// fanning out toward the upper edge.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 48;

  Histogram() = default;
  PDX_DISALLOW_COPY(Histogram);

  void Record(uint64_t value_ns);

  /// Records `count` observations totalling `total_ns` in one shot: count
  /// and sum are exact; the bucket is charged at the per-observation mean
  /// (total_ns / count). Batched call sites (CostMany fills) use this so a
  /// batch costs one clock read and three relaxed adds instead of one
  /// Record() per cell — the ≤2% tracing-overhead budget at batch widths.
  void RecordBatch(uint64_t total_ns, uint64_t count);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t SumNs() const { return sum_.load(std::memory_order_relaxed); }
  /// Approximate p-quantile in ns (p in [0, 1]); 0 when empty.
  double Quantile(double p) const;
  double MeanNs() const;

  /// Adds another histogram's buckets into this one (same fixed bucket
  /// boundaries by construction). Relaxed per-bucket reads: merging while
  /// the other histogram is being written yields a valid snapshot-ish sum.
  void MergeFrom(const Histogram& other);

  void Reset();

  /// Inclusive upper bound of bucket `b` in ns.
  static uint64_t BucketUpperNs(size_t b);
  uint64_t BucketCount(size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// Process-wide named metric registry. Get*() interns by name (stable
/// pointers for the process lifetime) so call sites cache the handle in a
/// static local and pay one mutex hit ever.
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Prometheus text exposition format: every metric preceded by its
  /// `# HELP` (escaped per the exposition rules: backslash and newline)
  /// and `# TYPE` lines; counters/gauges as single samples, histograms as
  /// summaries — p50/p95/p99 quantile-labeled lines plus _sum/_count.
  /// Names sorted within each kind.
  std::string DumpPrometheus() const;
  /// Flat CSV summary: name,kind,count,value,p50_ns,p95_ns,p99_ns.
  std::string DumpCsv() const;

  /// One registered metric flattened to a scalar, for the run ledger.
  /// Histograms expand to two samples: <name>_count and <name>_sum.
  struct Sample {
    std::string name;
    std::string kind;  // "counter" | "gauge" | "histogram"
    double value = 0.0;
  };
  /// Snapshot of every registered metric as flat samples, name-sorted
  /// within each kind (the DumpPrometheus order).
  std::vector<Sample> Samples() const;

  /// Zeroes every registered metric (tests and bench A/B sections).
  void ResetAll();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Help text for a registry metric name: a known-name table with a
/// generic fallback, so DumpPrometheus always has a `# HELP` line to
/// emit. Exposed for tests.
std::string MetricHelp(const std::string& name);

/// Applies a --metrics[=spec] flag shared by pdx_tool and the benches:
/// "" or "prom" dumps Prometheus text to stdout, "csv" dumps CSV to
/// stdout, "csv:PATH" writes CSV to PATH, and any other value is a path
/// that receives the Prometheus dump. File targets print a one-line
/// confirmation so reports and registry dumps stop interleaving.
Status WriteMetricsDump(const std::string& spec);

/// Starts a gated timer: 0 when timing is disabled, otherwise the start
/// timestamp. Pair with TimerStop.
inline uint64_t TimerStart() { return TimingEnabled() ? NowNs() : 0; }

/// Records the elapsed time when the matching TimerStart was live.
inline void TimerStop(uint64_t start_ns, Histogram* h) {
  if (start_ns != 0) h->Record(NowNs() - start_ns);
}

/// Batched TimerStop: attributes the elapsed time since `start_ns` to
/// `count` observations in one histogram update. One clock read per
/// batch; no-op when timing was disabled at TimerStart or count == 0.
inline void TimerStopBatch(uint64_t start_ns, Histogram* h, uint64_t count) {
  if (start_ns != 0 && count > 0) h->RecordBatch(NowNs() - start_ns, count);
}

/// RAII form of TimerStart/TimerStop.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h), start_ns_(TimerStart()) {}
  ~ScopedTimer() { TimerStop(start_ns_, h_); }
  PDX_DISALLOW_COPY(ScopedTimer);

 private:
  Histogram* h_;
  uint64_t start_ns_;
};

}  // namespace pdx::obs
