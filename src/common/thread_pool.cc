#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "common/obs.h"
#include "common/span.h"

namespace pdx {

namespace {

// Interned pool metrics. busy_ns / job_ns need clock reads, so they are
// gated on obs::TimingEnabled() like every other timing site.
struct PoolMetricSet {
  obs::Counter* jobs;
  obs::Counter* chunks;
  obs::Counter* busy_ns;
  obs::Gauge* queue_depth;
  obs::Gauge* threads;
  obs::Histogram* job_ns;
};

PoolMetricSet& PoolMetrics() {
  static PoolMetricSet m = [] {
    obs::Registry& r = obs::Registry::Global();
    return PoolMetricSet{r.GetCounter("pdx_pool_jobs_total"),
                         r.GetCounter("pdx_pool_chunks_total"),
                         r.GetCounter("pdx_pool_busy_ns_total"),
                         r.GetGauge("pdx_pool_queue_depth"),
                         r.GetGauge("pdx_pool_threads"),
                         r.GetHistogram("pdx_pool_job_ns")};
  }();
  return m;
}

thread_local bool tls_in_worker = false;
// Depth of ParallelFor parallel-path invocations on this thread. A chunk
// body running on the *submitting* thread is not a worker, but a nested
// ParallelFor from it must still run serially: the outer call holds the
// pool's submit mutex.
thread_local int tls_parallel_depth = 0;

struct ParallelDepthScope {
  ParallelDepthScope() { ++tls_parallel_depth; }
  ~ParallelDepthScope() { --tls_parallel_depth; }
};

/// Configured-but-maybe-not-yet-built global pool state.
struct GlobalPoolState {
  std::mutex mu;
  std::unique_ptr<ThreadPool> pool;
  size_t configured = 0;  // 0 = not explicitly configured

  size_t ResolveSize() const {
    if (configured > 0) return configured;
    if (const char* env = std::getenv("PDX_THREADS")) {
      long v = std::atol(env);
      if (v > 0) return static_cast<size_t>(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<size_t>(hw) : 1;
  }
};

GlobalPoolState& GlobalState() {
  static GlobalPoolState state;
  return state;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  PDX_CHECK(num_threads >= 1);
  workers_.reserve(num_threads - 1);
  for (size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  PoolMetrics().threads->Set(static_cast<int64_t>(num_threads));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::InWorker() { return tls_in_worker; }

void ThreadPool::RunChunks() {
  // One span per participating thread per job — chunk granularity would
  // swamp the ring on fine-grained ParallelFor bodies.
  obs::SpanScope job_span("run_chunks", "pool");
  const uint64_t t0 = obs::TimerStart();
  uint64_t chunks_run = 0;
  while (true) {
    size_t start = cursor_.fetch_add(chunk_, std::memory_order_relaxed);
    if (start >= end_) break;
    size_t stop = std::min(start + chunk_, end_);
    ++chunks_run;
    try {
      (*fn_)(start, stop);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
      // Cancel remaining chunks; in-flight ones finish normally.
      cursor_.store(end_, std::memory_order_relaxed);
    }
  }
  if (chunks_run > 0) {
    PoolMetrics().chunks->Add(chunks_run);
    if (t0 != 0) {
      const uint64_t busy = obs::NowNs() - t0;
      PoolMetrics().busy_ns->Add(busy);
      PoolMetrics().job_ns->Record(busy);
    }
  }
}

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    RunChunks();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_active_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t chunk,
                             const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  if (chunk == 0) {
    chunk = std::max<size_t>(1, n / (4 * num_threads()));
  }
  // Serial fast paths: single-threaded pool, a range that fits in one
  // chunk, or a nested call — from inside a worker (which would deadlock
  // waiting for the pool it is running on) or from a chunk body running
  // on the submitting thread (which already holds submit_mu_).
  if (workers_.empty() || n <= chunk || InWorker() ||
      tls_parallel_depth > 0) {
    for (size_t start = begin; start < end; start += chunk) {
      fn(start, std::min(start + chunk, end));
    }
    return;
  }

  ParallelDepthScope depth_scope;
  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  PoolMetrics().jobs->Add();
  // Depth of the chunk queue this job fans out (last-write-wins gauge;
  // reset to 0 once the job drains).
  PoolMetrics().queue_depth->Set(
      static_cast<int64_t>((n + chunk - 1) / chunk));
  {
    std::lock_guard<std::mutex> lock(mu_);
    end_ = end;
    chunk_ = chunk;
    fn_ = &fn;
    cursor_.store(begin, std::memory_order_relaxed);
    error_ = nullptr;
    workers_active_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  RunChunks();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return workers_active_ == 0; });
  fn_ = nullptr;
  PoolMetrics().queue_depth->Set(0);
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

ThreadPool& GlobalThreadPool() {
  GlobalPoolState& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.pool) {
    state.pool = std::make_unique<ThreadPool>(state.ResolveSize());
  }
  return *state.pool;
}

void SetGlobalThreadCount(size_t n) {
  GlobalPoolState& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mu);
  state.configured = n;
  // Rebuild only if the live pool's size no longer matches.
  if (state.pool && state.pool->num_threads() != state.ResolveSize()) {
    state.pool.reset();
  }
}

size_t GlobalThreadCount() {
  GlobalPoolState& state = GlobalState();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.pool) return state.pool->num_threads();
  return state.ResolveSize();
}

}  // namespace pdx
