#include "common/zipf.h"

#include <algorithm>
#include <cmath>

namespace pdx {

namespace {
double GeneralizedHarmonic(size_t n, double theta) {
  double h = 0.0;
  for (size_t i = 1; i <= n; ++i) h += 1.0 / std::pow(static_cast<double>(i), theta);
  return h;
}
}  // namespace

ZipfDistribution::ZipfDistribution(size_t n, double theta)
    : n_(n), theta_(theta) {
  PDX_CHECK(n >= 1);
  PDX_CHECK(theta >= 0.0);
  cdf_.resize(n);
  double h = 0.0;
  for (size_t i = 0; i < n; ++i) {
    h += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = h;
  }
  for (auto& c : cdf_) c /= h;
  cdf_.back() = 1.0;  // guard against round-off
}

size_t ZipfDistribution::Sample(Rng* rng) const {
  PDX_CHECK(rng != nullptr);
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfDistribution::Probability(size_t i) const {
  PDX_CHECK(i < n_);
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

double ZipfTopFrequency(size_t n, double theta) {
  return ZipfFrequency(n, theta, 0);
}

double ZipfFrequency(size_t n, double theta, size_t rank) {
  PDX_CHECK(n >= 1);
  PDX_CHECK(rank < n);
  double h = GeneralizedHarmonic(n, theta);
  return (1.0 / std::pow(static_cast<double>(rank + 1), theta)) / h;
}

}  // namespace pdx
