// Copyright (c) the pdexplore authors.
// Zipf-distributed sampling. The paper's synthetic TPC-D database is
// generated "so that the frequency of attribute values follows a Zipf-like
// distribution, using the skew-parameter theta = 1"; we use the same family
// both for data-value frequencies (selectivities) and for template
// popularity in the CRM trace.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace pdx {

/// Samples ranks from a Zipf(theta) distribution over {0, ..., n-1}:
/// Pr(rank = i) proportional to 1 / (i+1)^theta. Uses an inverted-CDF table;
/// construction is O(n), sampling O(log n).
class ZipfDistribution {
 public:
  /// `n` must be >= 1; `theta` >= 0 (theta = 0 degenerates to uniform).
  ZipfDistribution(size_t n, double theta);

  /// Draws a rank in [0, n).
  size_t Sample(Rng* rng) const;

  /// Probability mass of rank `i`.
  double Probability(size_t i) const;

  size_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  size_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = Pr(rank <= i)
};

/// The frequency (relative mass) of the most common value under
/// Zipf(theta) over `n` values — used by the catalog to derive equality-
/// predicate selectivities without materializing a distribution object.
double ZipfTopFrequency(size_t n, double theta);

/// Relative mass of the value of rank `rank` (0-based) under Zipf(theta)
/// over `n` values.
double ZipfFrequency(size_t n, double theta, size_t rank);

}  // namespace pdx
