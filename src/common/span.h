// Copyright (c) the pdexplore authors.
// Hierarchical self-profiling spans (ISSUE 8). A SpanScope brackets one
// phase of work — a selector round phase, a budget decision, a cold
// what-if batch, a pool job — and records where the wall-clock went with
// parent linkage, so a traced run can be rolled up per phase (run ledger)
// or exploded into a Chrome trace-event timeline (pdx_tool report
// --profile=...).
//
// Discipline (same as the ISSUE 3 timers):
//   * Everything is gated on obs::TimingEnabled(): an untraced run pays
//     exactly one relaxed load + branch per span site, and an enabled
//     span draws no randomness and makes no optimizer calls — a traced
//     run stays byte-identical to an untraced one.
//   * Buffers are per-thread and lock-free on the hot path: the owning
//     thread appends closed spans into a fixed-capacity SPSC ring
//     (release-published), and drainers read behind the published index
//     without ever blocking a writer. A full ring drops (and counts)
//     rather than stalls.
//   * Span records reference only static-storage strings (call-site
//     literals), so draining after the recording thread exited is safe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/obs.h"

namespace pdx::obs {

/// One closed span, as published into the per-thread ring.
struct SpanRecord {
  const char* name = "";      // call-site literal, e.g. "estimate"
  const char* category = "";  // subsystem, e.g. "selector"
  uint64_t id = 0;            // unique per process: (tid << 32) | seq
  uint64_t parent = 0;        // enclosing span's id on this thread; 0 = root
  uint32_t tid = 0;           // stable per-thread index (registration order)
  uint64_t start_ns = 0;      // obs::NowNs() at open
  uint64_t end_ns = 0;        // obs::NowNs() at close
  const char* counter = nullptr;  // tracked counter's name; nullptr if none
  uint64_t counter_delta = 0;     // tracked counter's growth over the span
};

/// A registry counter watched by a span: its Value() is read at open and
/// close and the delta lands in SpanRecord::counter_delta (e.g. "how many
/// what-if calls did this round phase issue"). Reads only — tracking a
/// counter never mutates it.
struct TrackedCounter {
  const Counter* counter = nullptr;
  const char* name = nullptr;
};

/// RAII span. Inactive (a single relaxed load) when timing is disabled at
/// construction; otherwise pushes an open frame on this thread's span
/// stack and publishes the closed record on destruction. Must be opened
/// and closed on the same thread (RAII guarantees it).
class SpanScope {
 public:
  explicit SpanScope(const char* name, const char* category,
                     TrackedCounter tracked = {});
  /// Gated form: additionally inactive when `enabled` is false, whatever
  /// the timing state. Used for per-round decimation (SampledSpanRound).
  SpanScope(bool enabled, const char* name, const char* category,
            TrackedCounter tracked = {});
  ~SpanScope();
  PDX_DISALLOW_COPY(SpanScope);

  /// This span's id, 0 when inactive (testing / manual parenting).
  uint64_t id() const { return id_; }

 private:
  void Open(const char* name, const char* category, TrackedCounter tracked);

  uint64_t id_ = 0;  // 0 = inactive: timing was off at construction
};

/// Deterministic 1-in-64 decimation for per-round phase spans. A fine
/// round phase (estimate, pairwise, termination, ...) costs two clock
/// reads plus a ring slot; recording every round would dominate
/// microsecond-scale rounds against a precomputed cost matrix and
/// overflow the ring on multi-thousand-round selections. Sampling every
/// 64th round keeps both ~1.5% of the full-rate cost, and rollups stay
/// comparable across runs because both sides of a ledger diff sample the
/// same round indices. Run-level spans (run/pilot/stratify) are not
/// decimated, so their totals are exact.
constexpr uint64_t kSpanRoundInterval = 64;
inline bool SampledSpanRound(uint64_t round) {
  return (round % kSpanRoundInterval) == 0;
}

/// Everything closed-and-published since the last drain, across all
/// threads that ever recorded a span. `dropped` counts records lost to
/// full rings (cumulative since process start).
struct SpanSnapshot {
  std::vector<SpanRecord> records;
  uint64_t dropped = 0;
};

/// Collects closed spans from every thread's ring and advances the drain
/// cursors. Safe concurrently with writers (they publish ahead of the
/// cursor; a record is either in this drain or the next). Drains are
/// serialized against each other.
SpanSnapshot DrainSpans();

/// Discards all undrained spans (bench A/B sections, test isolation).
/// Does not reset the `dropped` counter.
void ResetSpans();

/// Number of currently open (unclosed) spans on the calling thread.
size_t OpenSpanDepth();

/// Per-phase aggregate of a span set: the run-ledger rollup unit.
struct SpanRollupRow {
  std::string category;
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t counter_delta = 0;
};

/// Aggregates records by (category, name), ordered by total_ns descending
/// (ties by category then name) — deterministic and independent of record
/// order, i.e. of thread interleaving.
std::vector<SpanRollupRow> RollupSpans(const std::vector<SpanRecord>& records);

}  // namespace pdx::obs
