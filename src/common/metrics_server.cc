#include "common/metrics_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/obs.h"
#include "common/string_util.h"

namespace pdx::obs {

namespace {

std::string HttpMessage(int code, const char* reason,
                        const char* content_type, const std::string& body) {
  return StringFormat(
             "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: "
             "%zu\r\nConnection: close\r\n\r\n",
             code, reason, content_type, body.size()) +
         body;
}

Status SocketError(const char* what) {
  return Status::IOError(StringFormat("%s: %s", what, std::strerror(errno)));
}

}  // namespace

std::string MetricsHttpResponse(const std::string& request_head) {
  Registry::Global().GetCounter("pdx_exporter_requests_total")->Add();
  size_t eol = request_head.find('\n');
  std::string line = request_head.substr(
      0, eol == std::string::npos ? request_head.size() : eol);
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
    line.pop_back();
  }
  if (line.rfind("GET ", 0) != 0) {
    return HttpMessage(405, "Method Not Allowed", "text/plain",
                       "method not allowed\n");
  }
  size_t sp = line.find(' ', 4);
  std::string path =
      sp == std::string::npos ? line.substr(4) : line.substr(4, sp - 4);
  if (path == "/metrics") {
    return HttpMessage(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                       Registry::Global().DumpPrometheus());
  }
  if (path == "/healthz") {
    return HttpMessage(200, "OK", "text/plain", "ok\n");
  }
  return HttpMessage(404, "Not Found", "text/plain", "not found\n");
}

Status ServeMetrics(const MetricsServerOptions& options, int* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SocketError("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = SocketError("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) != 0) {
    Status st = SocketError("listen");
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status st = SocketError("getsockname");
    ::close(fd);
    return st;
  }
  const int port = ntohs(addr.sin_port);
  if (bound_port != nullptr) *bound_port = port;
  std::printf("serving metrics on http://127.0.0.1:%d/metrics\n", port);
  std::fflush(stdout);
  for (uint64_t served = 0;
       options.max_requests == 0 || served < options.max_requests;
       ++served) {
    int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        --served;
        continue;
      }
      Status st = SocketError("accept");
      ::close(fd);
      return st;
    }
    // Read the request head (through the blank line); this server never
    // consumes a body.
    std::string head;
    char buf[2048];
    while (head.find("\r\n\r\n") == std::string::npos && head.size() < 8192) {
      ssize_t n = ::read(conn, buf, sizeof(buf));
      if (n <= 0) break;
      head.append(buf, static_cast<size_t>(n));
    }
    const std::string resp = MetricsHttpResponse(head);
    size_t off = 0;
    while (off < resp.size()) {
      // MSG_NOSIGNAL: a client that hung up must not SIGPIPE the tool.
      ssize_t n = ::send(conn, resp.data() + off, resp.size() - off,
                         MSG_NOSIGNAL);
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
    ::shutdown(conn, SHUT_WR);
    ::close(conn);
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace pdx::obs
