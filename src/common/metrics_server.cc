#include "common/metrics_server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/obs.h"
#include "common/string_util.h"

namespace pdx::obs {

namespace {

std::string HttpMessage(int code, const char* reason,
                        const char* content_type, const std::string& body) {
  return StringFormat(
             "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: "
             "%zu\r\nConnection: close\r\n\r\n",
             code, reason, content_type, body.size()) +
         body;
}

Status SocketError(const char* what) {
  return Status::IOError(StringFormat("%s: %s", what, std::strerror(errno)));
}

}  // namespace

ReadOutcome ReadUntilDelimiter(int fd, const char* delimiter,
                               size_t max_bytes, int deadline_ms,
                               std::string* out) {
  const size_t start = out->size();
  // The delimiter may straddle the boundary between pre-existing bytes
  // and the first read; back the scan window up by its length - 1.
  const size_t dlen = std::strlen(delimiter);
  const size_t scan_from = start >= dlen - 1 ? start - (dlen - 1) : 0;
  const int64_t deadline_ns =
      deadline_ms > 0 ? NowNs() + int64_t{deadline_ms} * 1'000'000 : 0;
  char buf[2048];
  while (out->find(delimiter, scan_from) == std::string::npos) {
    if (out->size() - start >= max_bytes) return ReadOutcome::kTooLarge;
    if (deadline_ns != 0) {
      const int64_t remaining_ms = (deadline_ns - NowNs()) / 1'000'000;
      if (remaining_ms <= 0) return ReadOutcome::kDeadline;
      pollfd pfd{fd, POLLIN, 0};
      int pr = ::poll(&pfd, 1, static_cast<int>(remaining_ms));
      if (pr < 0) {
        if (errno == EINTR) continue;
        return ReadOutcome::kError;
      }
      if (pr == 0) return ReadOutcome::kDeadline;
    }
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;  // a signal is not EOF
      return ReadOutcome::kError;
    }
    if (n == 0) return ReadOutcome::kEof;
    out->append(buf, static_cast<size_t>(n));
  }
  return ReadOutcome::kComplete;
}

bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a client that hung up must not SIGPIPE the tool.
    ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;  // a signal is not a broken pipe
      return false;
    }
    if (n == 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

std::string MetricsHttpResponse(const std::string& request_head) {
  Registry::Global().GetCounter("pdx_exporter_requests_total")->Add();
  size_t eol = request_head.find('\n');
  std::string line = request_head.substr(
      0, eol == std::string::npos ? request_head.size() : eol);
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n')) {
    line.pop_back();
  }
  if (line.rfind("GET ", 0) != 0) {
    return HttpMessage(405, "Method Not Allowed", "text/plain",
                       "method not allowed\n");
  }
  size_t sp = line.find(' ', 4);
  std::string path =
      sp == std::string::npos ? line.substr(4) : line.substr(4, sp - 4);
  // Dispatch ignores query strings and fragments: Prometheus scrapers
  // routinely append ?format=... and must still hit /metrics.
  size_t cut = path.find_first_of("?#");
  if (cut != std::string::npos) path.resize(cut);
  if (path == "/metrics") {
    return HttpMessage(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                       Registry::Global().DumpPrometheus());
  }
  if (path == "/healthz") {
    return HttpMessage(200, "OK", "text/plain", "ok\n");
  }
  return HttpMessage(404, "Not Found", "text/plain", "not found\n");
}

Status ServeMetrics(const MetricsServerOptions& options, int* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SocketError("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = SocketError("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, 16) != 0) {
    Status st = SocketError("listen");
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status st = SocketError("getsockname");
    ::close(fd);
    return st;
  }
  const int port = ntohs(addr.sin_port);
  if (bound_port != nullptr) *bound_port = port;
  std::printf("serving metrics on http://127.0.0.1:%d/metrics\n", port);
  std::fflush(stdout);
  for (uint64_t served = 0;
       options.max_requests == 0 || served < options.max_requests;
       ++served) {
    int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        --served;
        continue;
      }
      Status st = SocketError("accept");
      ::close(fd);
      return st;
    }
    // Read the request head (through the blank line) under the
    // per-connection deadline; this server never consumes a body. A
    // stalled client gets 408 and the loop moves on — it cannot block
    // the next scraper (the accept loop is sequential).
    std::string head;
    const ReadOutcome outcome = ReadUntilDelimiter(
        conn, "\r\n\r\n", 8192, options.read_deadline_ms, &head);
    std::string resp;
    if (outcome == ReadOutcome::kDeadline) {
      Registry::Global()
          .GetCounter("pdx_exporter_deadline_drops_total")
          ->Add();
      resp = HttpMessage(408, "Request Timeout", "text/plain",
                         "request head deadline exceeded\n");
    } else {
      resp = MetricsHttpResponse(head);
    }
    SendAll(conn, resp);
    ::shutdown(conn, SHUT_WR);
    ::close(conn);
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace pdx::obs
