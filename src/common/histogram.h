// Copyright (c) the pdexplore authors.
// Equi-depth histogram over double values. Used by the catalog for column
// value distributions and by benches to summarize cost distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pdx {

/// Fixed-bucket-count equi-depth histogram built from a batch of values.
class EquiDepthHistogram {
 public:
  /// Builds a histogram with at most `num_buckets` buckets. `values` may be
  /// in any order; an internal sorted copy is made.
  EquiDepthHistogram(std::vector<double> values, size_t num_buckets);

  /// Estimated fraction of values <= x.
  double CdfEstimate(double x) const;

  /// Estimated fraction of values in (lo, hi].
  double RangeFraction(double lo, double hi) const;

  /// Approximate p-quantile (p in [0, 1]).
  double Quantile(double p) const;

  size_t num_buckets() const { return boundaries_.empty() ? 0 : boundaries_.size() - 1; }
  int64_t total_count() const { return total_count_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Multi-line textual rendering for logs and example programs.
  std::string ToString() const;

 private:
  std::vector<double> boundaries_;  // num_buckets + 1 edges, non-decreasing
  std::vector<int64_t> counts_;     // per-bucket counts
  int64_t total_count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace pdx
