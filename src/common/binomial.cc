#include "common/binomial.h"

#include <cmath>

#include "common/macros.h"
#include "common/normal.h"

namespace pdx {

double LogChoose(uint64_t n, uint64_t k) {
  PDX_CHECK(k <= n);
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

namespace {

/// Continued fraction for the incomplete beta function (Lentz's method,
/// Numerical Recipes betacf). Converges quickly for x < (a+1)/(a+b+2).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-16;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  PDX_CHECK(a > 0.0 && b > 0.0);
  PDX_CHECK(x >= 0.0 && x <= 1.0);
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_front = std::lgamma(a + b) - std::lgamma(a) -
                           std::lgamma(b) + a * std::log(x) +
                           b * std::log1p(-x);
  const double front = std::exp(log_front);
  // Use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to stay in the
  // fast-converging region of the continued fraction.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double BetaQuantile(double p, double a, double b) {
  PDX_CHECK(p >= 0.0 && p <= 1.0);
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  // Bisection: monotone, branch-free to reason about, and fast enough for
  // the gate (one inversion per calibration cell). ~60 iterations reach
  // full double precision on [0, 1].
  double lo = 0.0;
  double hi = 1.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (mid == lo || mid == hi) break;
    if (RegularizedIncompleteBeta(a, b, mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double BinomialPmf(uint64_t n, uint64_t k, double p) {
  PDX_CHECK(k <= n);
  PDX_CHECK(p >= 0.0 && p <= 1.0);
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = LogChoose(n, k) + static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double BinomialTailGeq(uint64_t n, uint64_t k, double p) {
  PDX_CHECK(k <= n);
  PDX_CHECK(p >= 0.0 && p <= 1.0);
  if (k == 0) return 1.0;
  // P(X >= k) = I_p(k, n - k + 1).
  return RegularizedIncompleteBeta(static_cast<double>(k),
                                   static_cast<double>(n - k) + 1.0, p);
}

double BinomialCdf(uint64_t n, uint64_t k, double p) {
  PDX_CHECK(p >= 0.0 && p <= 1.0);
  if (k >= n) return 1.0;
  return 1.0 - BinomialTailGeq(n, k + 1, p);
}

double ClopperPearsonLower(uint64_t successes, uint64_t trials,
                           double confidence) {
  PDX_CHECK(successes <= trials);
  PDX_CHECK(trials > 0);
  PDX_CHECK(confidence > 0.0 && confidence < 1.0);
  if (successes == 0) return 0.0;
  // p_L solves P(X >= s | p_L) = 1 - confidence, i.e.
  // I_{p_L}(s, n - s + 1) = 1 - confidence.
  return BetaQuantile(1.0 - confidence, static_cast<double>(successes),
                      static_cast<double>(trials - successes) + 1.0);
}

double ClopperPearsonUpper(uint64_t successes, uint64_t trials,
                           double confidence) {
  PDX_CHECK(successes <= trials);
  PDX_CHECK(trials > 0);
  PDX_CHECK(confidence > 0.0 && confidence < 1.0);
  if (successes == trials) return 1.0;
  // p_U solves P(X <= s | p_U) = 1 - confidence, i.e.
  // I_{p_U}(s + 1, n - s) = confidence.
  return BetaQuantile(confidence, static_cast<double>(successes) + 1.0,
                      static_cast<double>(trials - successes));
}

namespace {

double WilsonBound(uint64_t successes, uint64_t trials, double confidence,
                   bool upper) {
  PDX_CHECK(successes <= trials);
  PDX_CHECK(trials > 0);
  PDX_CHECK(confidence > 0.0 && confidence < 1.0);
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z = NormalQuantile(confidence);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  const double bound = upper ? center + half : center - half;
  return bound < 0.0 ? 0.0 : (bound > 1.0 ? 1.0 : bound);
}

}  // namespace

double WilsonLower(uint64_t successes, uint64_t trials, double confidence) {
  return WilsonBound(successes, trials, confidence, /*upper=*/false);
}

double WilsonUpper(uint64_t successes, uint64_t trials, double confidence) {
  return WilsonBound(successes, trials, confidence, /*upper=*/true);
}

}  // namespace pdx
