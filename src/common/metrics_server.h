// Copyright (c) the pdexplore authors.
// Minimal single-threaded HTTP exporter for the metric registry
// (ISSUE 8): `pdx_tool serve-metrics --port=N` serves GET /metrics
// (Prometheus text exposition, straight from obs::Registry) and GET
// /healthz. This is deliberately tiny — one blocking accept loop, no
// keep-alive, no TLS, no threads — the first resident-process slice of
// the ROADMAP's selection-as-a-service daemon, not a web framework.
// The socket helpers (deadline-bounded head reads, EINTR-safe writes)
// are shared with the full service daemon in src/service/server.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace pdx::obs {

struct MetricsServerOptions {
  /// TCP port to bind on 127.0.0.1. 0 picks an ephemeral port (the
  /// chosen one is printed and reported via *bound_port).
  int port = 9464;
  /// Exit cleanly after this many requests; 0 serves forever. The CI
  /// smoke and tests use this to get a deterministic shutdown.
  uint64_t max_requests = 0;
  /// Per-connection budget for reading the request head, in
  /// milliseconds. A client that connects and then stalls is dropped
  /// (408) once this elapses, so it can never wedge the sequential
  /// accept loop for the next scraper. 0 means wait forever (the old
  /// behaviour; only tests should want it).
  int read_deadline_ms = 2000;
};

/// Outcome of ReadUntilDelimiter: why the read loop stopped.
enum class ReadOutcome {
  kComplete,   // delimiter seen; *out holds everything read
  kEof,        // peer closed before the delimiter
  kDeadline,   // read_deadline_ms elapsed without the delimiter
  kTooLarge,   // max_bytes exceeded without the delimiter
  kError,      // read()/poll() failed (errno preserved)
};

/// Reads from `fd` until `delimiter` appears in the accumulated bytes,
/// EOF, `max_bytes`, or `deadline_ms` elapses (0 = no deadline).
/// Retries EINTR on both poll() and read(). The accumulated bytes —
/// including anything after the delimiter — are appended to *out.
/// Shared by the metrics exporter (delimiter "\r\n\r\n") and the
/// service daemon's line protocol (delimiter "\n").
ReadOutcome ReadUntilDelimiter(int fd, const char* delimiter,
                               size_t max_bytes, int deadline_ms,
                               std::string* out);

/// Writes all of `data` to the socket, retrying EINTR and short writes;
/// sends with MSG_NOSIGNAL so a peer hang-up cannot SIGPIPE the
/// process. Returns false on any other error.
bool SendAll(int fd, const std::string& data);

/// The full HTTP response for one request head (everything up to the
/// blank line). Pure function of the request and the registry — the
/// socket loop and the tests share it. Query strings and fragments are
/// stripped before dispatch (`GET /metrics?x=y` serves /metrics). Bumps
/// pdx_exporter_requests_total.
std::string MetricsHttpResponse(const std::string& request_head);

/// Binds 127.0.0.1:<port>, prints "serving metrics on
/// http://127.0.0.1:PORT/metrics", and serves requests one at a time
/// until max_requests is reached (never returns when max_requests is 0,
/// short of a socket error). `bound_port`, when non-null, receives the
/// actual port before the first accept.
Status ServeMetrics(const MetricsServerOptions& options,
                    int* bound_port = nullptr);

}  // namespace pdx::obs
