// Copyright (c) the pdexplore authors.
// Minimal single-threaded HTTP exporter for the metric registry
// (ISSUE 8): `pdx_tool serve-metrics --port=N` serves GET /metrics
// (Prometheus text exposition, straight from obs::Registry) and GET
// /healthz. This is deliberately tiny — one blocking accept loop, no
// keep-alive, no TLS, no threads — the first resident-process slice of
// the ROADMAP's selection-as-a-service daemon, not a web framework.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace pdx::obs {

struct MetricsServerOptions {
  /// TCP port to bind on 127.0.0.1. 0 picks an ephemeral port (the
  /// chosen one is printed and reported via *bound_port).
  int port = 9464;
  /// Exit cleanly after this many requests; 0 serves forever. The CI
  /// smoke and tests use this to get a deterministic shutdown.
  uint64_t max_requests = 0;
};

/// The full HTTP response for one request head (everything up to the
/// blank line). Pure function of the request and the registry — the
/// socket loop and the tests share it. Bumps
/// pdx_exporter_requests_total.
std::string MetricsHttpResponse(const std::string& request_head);

/// Binds 127.0.0.1:<port>, prints "serving metrics on
/// http://127.0.0.1:PORT/metrics", and serves requests one at a time
/// until max_requests is reached (never returns when max_requests is 0,
/// short of a socket error). `bound_port`, when non-null, receives the
/// actual port before the first accept.
Status ServeMetrics(const MetricsServerOptions& options,
                    int* bound_port = nullptr);

}  // namespace pdx::obs
