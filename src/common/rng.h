// Copyright (c) the pdexplore authors.
// Deterministic pseudo-random number generation. All experiments in this
// repository are seeded explicitly so results reproduce bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace pdx {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next();

 private:
  uint64_t state_;
};

/// xoshiro256++ 1.0 (Blackman & Vigna). Fast, high-quality, 2^256-1 period.
/// Not cryptographically secure; intended for simulation.
class Rng {
 public:
  /// Seeds the generator state via SplitMix64 expansion of `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64 random bits.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). Uses Lemire's unbiased multiply-shift
  /// rejection method. `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Marsaglia polar method).
  double NextGaussian();

  /// Log-normally distributed variate: exp(N(mu, sigma^2)).
  double NextLogNormal(double mu, double sigma);

  /// True with probability p.
  bool NextBernoulli(double p);

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    PDX_CHECK(v != nullptr);
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Returns a uniformly random permutation of {0, 1, ..., n-1}.
  std::vector<uint32_t> Permutation(size_t n);

  /// Samples `k` distinct indices from {0..n-1} uniformly without
  /// replacement (Floyd's algorithm when k << n, shuffle otherwise).
  std::vector<uint32_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator (for parallel streams).
  Rng Split();

 private:
  uint64_t s_[4];
  // Cached second Gaussian from the polar method.
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// --- Trial seed-space partitioning -----------------------------------------
//
// Monte-Carlo harnesses seed trial t of an ensemble with `seed_base + t`.
// Two ensembles whose bases differ by less than their trial counts silently
// share trial seeds — correlated "independent" cells, the exact bug class the
// seed audit exists to catch. The registry below is the single enforcement
// point: every harness claims its [seed_base, seed_base + trials) span before
// running. Claiming the identical span twice is allowed (deterministic
// replay of the same experiment is a feature); a *partial* overlap aborts.

/// Canonical partitioned seed base for bench/calibration harnesses:
/// bit 63 set (clear of hand-picked test seeds), `bench_id` in bits 48..62,
/// `cell` in bits 24..47. Leaves 2^24 (~16.7M) trial seeds per cell.
uint64_t TrialSeedBase(uint32_t bench_id, uint32_t cell);

/// Claims [seed_base, seed_base + trials) in the process-wide registry.
/// Returns false if the span partially overlaps a previously claimed span
/// (identical re-claims return true). `trials` must be > 0 and must not
/// wrap past 2^64.
bool TryClaimTrialSeedSpan(uint64_t seed_base, uint64_t trials,
                           const char* owner);

/// PDX_CHECK-aborting wrapper around TryClaimTrialSeedSpan, printing both
/// owners on collision. Call this at every Monte-Carlo entry point.
void ClaimTrialSeedSpan(uint64_t seed_base, uint64_t trials,
                        const char* owner);

/// Clears the registry. Test-only: lets one process exercise the collision
/// paths repeatedly.
void ResetClaimedTrialSeedSpansForTests();

}  // namespace pdx
