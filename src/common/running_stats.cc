#include "common/running_stats.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace pdx {

void KahanSum::Add(double x) {
  double y = x - compensation_;
  double t = sum_ + y;
  compensation_ = (t - sum_) - y;
  sum_ = t;
}

void RunningMoments::Add(double x) {
  // Pébay's single-pass update for the first three central moments.
  int64_t n1 = n_;
  n_ += 1;
  double delta = x - mean_;
  double delta_n = delta / static_cast<double>(n_);
  double term1 = delta * delta_n * static_cast<double>(n1);
  mean_ += delta_n;
  m3_ += term1 * delta_n * static_cast<double>(n_ - 2) -
         3.0 * delta_n * m2_;
  m2_ += term1;
}

void RunningMoments::Remove(double x) {
  PDX_CHECK(n_ > 0);
  if (n_ == 1) {
    Reset();
    return;
  }
  // Inverse of the Welford update (first two moments).
  int64_t n1 = n_ - 1;
  double mean_prev =
      (mean_ * static_cast<double>(n_) - x) / static_cast<double>(n1);
  double delta = x - mean_prev;
  double delta_n = delta / static_cast<double>(n_);
  double term1 = delta * delta_n * static_cast<double>(n1);
  m2_ -= term1;
  m2_ = std::max(m2_, 0.0);  // guard round-off
  m3_ = 0.0;                 // third moment not maintained through removals
  mean_ = mean_prev;
  n_ = n1;
}

double RunningMoments::variance_population() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningMoments::variance_sample() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningMoments::stddev_sample() const {
  return std::sqrt(variance_sample());
}

double RunningMoments::skewness() const {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  double n = static_cast<double>(n_);
  double m2 = m2_ / n;
  double m3 = m3_ / n;
  return m3 / std::pow(m2, 1.5);
}

void RunningMoments::Reset() {
  n_ = 0;
  mean_ = m2_ = m3_ = 0.0;
}

void RunningMoments::Merge(const RunningMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double na = static_cast<double>(n_);
  double nb = static_cast<double>(other.n_);
  double nx = na + nb;
  double delta = other.mean_ - mean_;
  double mean = mean_ + delta * nb / nx;
  double m2 = m2_ + other.m2_ + delta * delta * na * nb / nx;
  double m3 = m3_ + other.m3_ +
              delta * delta * delta * na * nb * (na - nb) / (nx * nx) +
              3.0 * delta * (na * other.m2_ - nb * m2_) / nx;
  n_ = n_ + other.n_;
  mean_ = mean;
  m2_ = m2;
  m3_ = m3;
}

void RunningCovariance::Add(double x, double y) {
  n_ += 1;
  double n = static_cast<double>(n_);
  double dx = x - mean_x_;
  double dy = y - mean_y_;
  mean_x_ += dx / n;
  mean_y_ += dy / n;
  // Note: uses the *updated* mean_y_ for the cross term (standard online
  // covariance update).
  cxy_ += dx * (y - mean_y_);
  m2_x_ += dx * (x - mean_x_);
  m2_y_ += dy * (y - mean_y_);
}

double RunningCovariance::covariance_sample() const {
  return n_ > 1 ? cxy_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningCovariance::variance_x_sample() const {
  return n_ > 1 ? m2_x_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningCovariance::variance_y_sample() const {
  return n_ > 1 ? m2_y_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningCovariance::correlation() const {
  double vx = variance_x_sample();
  double vy = variance_y_sample();
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return covariance_sample() / std::sqrt(vx * vy);
}

void RunningCovariance::Reset() {
  n_ = 0;
  mean_x_ = mean_y_ = m2_x_ = m2_y_ = cxy_ = 0.0;
}

ExactMoments ExactMoments::Compute(const std::vector<double>& values) {
  ExactMoments out;
  if (values.empty()) return out;
  KahanSum sum;
  out.min = values[0];
  out.max = values[0];
  for (double v : values) {
    sum.Add(v);
    out.min = std::min(out.min, v);
    out.max = std::max(out.max, v);
  }
  double n = static_cast<double>(values.size());
  out.mean = sum.Total() / n;
  KahanSum s2, s3;
  for (double v : values) {
    double d = v - out.mean;
    s2.Add(d * d);
    s3.Add(d * d * d);
  }
  out.variance_population = s2.Total() / n;
  out.variance_sample =
      values.size() > 1 ? s2.Total() / (n - 1.0) : 0.0;
  if (out.variance_population > 0.0) {
    out.skewness =
        (s3.Total() / n) / std::pow(out.variance_population, 1.5);
  }
  return out;
}

}  // namespace pdx
