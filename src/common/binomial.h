// Copyright (c) the pdexplore authors.
// Binomial confidence intervals for the statistical conformance harness.
// The calibration engine (validation/calibration.h) certifies empirical
// P(correct selection) >= alpha from finite trial ensembles; a naive
// `fraction >= alpha` gate would flag sampling noise as miscalibration, so
// the gate itself is a one-sided binomial test with a quantified
// false-alarm rate, built from the exact Clopper-Pearson interval (via the
// regularized incomplete beta function) with the Wilson score interval as
// a closed-form cross-check.
#pragma once

#include <cstdint>

namespace pdx {

/// log(n choose k) via lgamma; exact enough for tail sums up to n ~ 1e6.
double LogChoose(uint64_t n, uint64_t k);

/// Regularized incomplete beta function I_x(a, b) for a, b > 0 and
/// x in [0, 1], by the standard continued-fraction expansion (Lentz).
/// Absolute error below ~1e-12 over the calibration gate's range.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Inverse of I_x(a, b) in x: returns x with I_x(a, b) = p. `p` in [0, 1].
double BetaQuantile(double p, double a, double b);

/// P(X = k) for X ~ Binomial(n, p).
double BinomialPmf(uint64_t n, uint64_t k, double p);

/// Upper tail P(X >= k); 1.0 when k == 0.
double BinomialTailGeq(uint64_t n, uint64_t k, double p);

/// Lower tail P(X <= k); 1.0 when k >= n.
double BinomialCdf(uint64_t n, uint64_t k, double p);

/// One-sided Clopper-Pearson lower confidence bound for the success
/// probability after `successes` out of `trials`: the largest p_L with
/// P(X >= successes | p_L) <= 1 - confidence. Pr(p_true < p_L) <=
/// 1 - confidence for every p_true. `confidence` in (0, 1); 0 when
/// successes == 0.
double ClopperPearsonLower(uint64_t successes, uint64_t trials,
                           double confidence);

/// One-sided Clopper-Pearson upper bound (1 when successes == trials).
double ClopperPearsonUpper(uint64_t successes, uint64_t trials,
                           double confidence);

/// One-sided Wilson score lower bound: the closed-form normal
/// approximation with the score-interval center/width. Slightly
/// anti-conservative for tiny n; used as a cross-check of the exact bound.
double WilsonLower(uint64_t successes, uint64_t trials, double confidence);

/// One-sided Wilson score upper bound.
double WilsonUpper(uint64_t successes, uint64_t trials, double confidence);

}  // namespace pdx
