#include "common/span.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

namespace pdx::obs {

namespace {

/// Ring capacity per thread (power of two). A selection run on the
/// Table-2 fixture closes ~5 spans per round over a few thousand rounds,
/// so one run fits with headroom; anything longer should drain mid-run
/// (the drop counter makes silent loss visible either way).
constexpr uint64_t kRingCap = 32768;
constexpr uint64_t kRingMask = kRingCap - 1;

/// An open (not yet closed) span frame on the owner thread's stack.
struct OpenFrame {
  const char* name;
  const char* category;
  uint64_t id;
  uint64_t parent;
  uint64_t start_ns;
  const Counter* tracked;
  const char* tracked_name;
  uint64_t tracked_at_open;
};

/// Per-thread span state. Constructed on a thread's first enabled span and
/// leaked into the global registry (never destroyed), so drains that
/// outlive the thread read stable memory. The ring is a classic SPSC
/// publish protocol: only the owner writes records and bumps `published`
/// (release); drainers read behind `published` (acquire) and advance
/// `drained` (release), which the owner checks (acquire) before reusing a
/// slot.
struct ThreadSpans {
  explicit ThreadSpans(uint32_t tid_in)
      : tid(tid_in), ring(new SpanRecord[kRingCap]) {}

  // Owner-thread only.
  std::vector<OpenFrame> stack;
  uint64_t next_seq = 0;
  const uint32_t tid;

  // Shared with drainers.
  SpanRecord* const ring;
  std::atomic<uint64_t> published{0};
  std::atomic<uint64_t> drained{0};
  std::atomic<uint64_t> dropped{0};

  void Append(const SpanRecord& r) {
    uint64_t pub = published.load(std::memory_order_relaxed);
    if (pub - drained.load(std::memory_order_acquire) >= kRingCap) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ring[pub & kRingMask] = r;
    published.store(pub + 1, std::memory_order_release);
  }
};

struct GlobalSpanState {
  std::mutex mu;  // guards `threads` growth and serializes drains
  std::vector<ThreadSpans*> threads;
};

GlobalSpanState& Global() {
  static GlobalSpanState* g = new GlobalSpanState();  // never destroyed
  return *g;
}

ThreadSpans& Tls() {
  static thread_local ThreadSpans* t = nullptr;
  if (t == nullptr) {
    GlobalSpanState& g = Global();
    std::lock_guard<std::mutex> lock(g.mu);
    t = new ThreadSpans(static_cast<uint32_t>(g.threads.size()));
    g.threads.push_back(t);
  }
  return *t;
}

}  // namespace

SpanScope::SpanScope(const char* name, const char* category,
                     TrackedCounter tracked) {
  if (!TimingEnabled()) return;  // the one relaxed load an untraced run pays
  Open(name, category, tracked);
}

SpanScope::SpanScope(bool enabled, const char* name, const char* category,
                     TrackedCounter tracked) {
  if (!enabled || !TimingEnabled()) return;
  Open(name, category, tracked);
}

void SpanScope::Open(const char* name, const char* category,
                     TrackedCounter tracked) {
  ThreadSpans& t = Tls();
  OpenFrame f;
  f.name = name;
  f.category = category;
  f.id = (static_cast<uint64_t>(t.tid) << 32) | ++t.next_seq;
  f.parent = t.stack.empty() ? 0 : t.stack.back().id;
  f.tracked = tracked.counter;
  f.tracked_name = tracked.name;
  f.tracked_at_open =
      tracked.counter != nullptr ? tracked.counter->Value() : 0;
  f.start_ns = NowNs();  // read last so frame setup is outside the span
  t.stack.push_back(f);
  id_ = f.id;
}

SpanScope::~SpanScope() {
  if (id_ == 0) return;
  const uint64_t end_ns = NowNs();  // read first, symmetric with the ctor
  ThreadSpans& t = Tls();
  PDX_CHECK_MSG(!t.stack.empty() && t.stack.back().id == id_,
                "SpanScope closed out of LIFO order");
  const OpenFrame f = t.stack.back();
  t.stack.pop_back();
  SpanRecord r;
  r.name = f.name;
  r.category = f.category;
  r.id = f.id;
  r.parent = f.parent;
  r.tid = t.tid;
  r.start_ns = f.start_ns;
  r.end_ns = end_ns;
  if (f.tracked != nullptr) {
    r.counter = f.tracked_name;
    r.counter_delta = f.tracked->Value() - f.tracked_at_open;
  }
  t.Append(r);
}

SpanSnapshot DrainSpans() {
  GlobalSpanState& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  SpanSnapshot snap;
  for (ThreadSpans* t : g.threads) {
    const uint64_t pub = t->published.load(std::memory_order_acquire);
    for (uint64_t i = t->drained.load(std::memory_order_relaxed); i < pub;
         ++i) {
      snap.records.push_back(t->ring[i & kRingMask]);
    }
    t->drained.store(pub, std::memory_order_release);
    snap.dropped += t->dropped.load(std::memory_order_relaxed);
  }
  return snap;
}

void ResetSpans() {
  GlobalSpanState& g = Global();
  std::lock_guard<std::mutex> lock(g.mu);
  for (ThreadSpans* t : g.threads) {
    t->drained.store(t->published.load(std::memory_order_acquire),
                     std::memory_order_release);
  }
}

size_t OpenSpanDepth() { return Tls().stack.size(); }

std::vector<SpanRollupRow> RollupSpans(
    const std::vector<SpanRecord>& records) {
  std::map<std::pair<std::string, std::string>, SpanRollupRow> agg;
  for (const SpanRecord& r : records) {
    SpanRollupRow& row = agg[{r.category, r.name}];
    if (row.count == 0) {
      row.category = r.category;
      row.name = r.name;
    }
    ++row.count;
    row.total_ns += r.end_ns - r.start_ns;
    row.counter_delta += r.counter_delta;
  }
  std::vector<SpanRollupRow> rows;
  rows.reserve(agg.size());
  for (auto& [key, row] : agg) {
    (void)key;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const SpanRollupRow& a, const SpanRollupRow& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              if (a.category != b.category) return a.category < b.category;
              return a.name < b.name;
            });
  return rows;
}

}  // namespace pdx::obs
