// Copyright (c) the pdexplore authors.
// Minimal leveled logging to stderr. Intended for examples, benches and
// debugging; the library itself logs nothing at level Info or below during
// normal operation.
#pragma once

#include <sstream>
#include <string>

namespace pdx {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that will be emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pdx

#define PDX_LOG(level)                                                     \
  ::pdx::internal::LogMessage(::pdx::LogLevel::k##level, __FILE__,         \
                              __LINE__)                                    \
      .stream()
