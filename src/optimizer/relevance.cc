#include "optimizer/relevance.h"

#include <algorithm>

namespace pdx {

namespace {

void SortUnique(std::vector<ColumnId>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

bool Contains(const std::vector<ColumnId>& sorted, ColumnId c) {
  return std::binary_search(sorted.begin(), sorted.end(), c);
}

bool IndexContainsColumn(const Index& index, ColumnId c) {
  return std::find(index.key_columns.begin(), index.key_columns.end(), c) !=
             index.key_columns.end() ||
         std::find(index.include_columns.begin(), index.include_columns.end(),
                   c) != index.include_columns.end();
}

}  // namespace

QueryFootprint ComputeFootprint(const Query& query) {
  QueryFootprint f;
  const SelectSpec& spec = query.select;
  f.accesses.resize(spec.accesses.size());
  for (size_t a = 0; a < spec.accesses.size(); ++a) {
    const TableAccess& access = spec.accesses[a];
    AccessFootprint& out = f.accesses[a];
    out.table = access.table;
    out.referenced_columns = access.referenced_columns;
    for (const Predicate& p : access.predicates) {
      // MatchSeekPrefix only anchors on sargable Eq/In/Range predicates.
      if (!p.sargable) continue;
      if (p.op == PredOp::kEq || p.op == PredOp::kIn ||
          p.op == PredOp::kRange) {
        out.seek_columns.push_back(p.column.column);
      }
    }
    SortUnique(&out.seek_columns);
    f.view_tables.push_back(access.table);
    for (ColumnId c : access.referenced_columns) {
      f.referenced_refs.push_back({access.table, c});
    }
  }
  for (const JoinEdge& j : spec.joins) {
    f.accesses[j.left_access].join_columns.push_back(j.left_column);
    f.accesses[j.right_access].join_columns.push_back(j.right_column);
  }
  for (AccessFootprint& a : f.accesses) SortUnique(&a.join_columns);
  std::sort(f.view_tables.begin(), f.view_tables.end());
  f.has_joins = !spec.joins.empty();
  if (f.has_joins) {
    std::vector<std::pair<ColumnRef, ColumnRef>> edges;
    edges.reserve(spec.joins.size());
    for (const JoinEdge& j : spec.joins) {
      edges.push_back({{spec.accesses[j.left_access].table, j.left_column},
                       {spec.accesses[j.right_access].table, j.right_column}});
    }
    f.join_signature = MakeJoinSignature(edges);
  }
  f.group_by = spec.group_by;
  if (query.update.has_value()) {
    f.has_update = true;
    f.update_table = query.update->table;
    f.update_kind = query.update->kind;
    f.update_set_columns = query.update->set_columns;
  }
  return f;
}

std::vector<QueryFootprint> ComputeWorkloadFootprints(
    const Workload& workload) {
  std::vector<QueryFootprint> out;
  out.reserve(workload.size());
  for (const Query& q : workload.queries()) out.push_back(ComputeFootprint(q));
  return out;
}

bool IndexRelevantToAccess(const AccessFootprint& access, const Index& index) {
  if (index.table != access.table) return false;
  if (!index.key_columns.empty()) {
    ColumnId lead = index.key_columns[0];
    if (Contains(access.seek_columns, lead)) return true;
    if (Contains(access.join_columns, lead)) return true;
  }
  return index.Covers(access.referenced_columns);
}

bool IndexTouchedByUpdate(const QueryFootprint& footprint,
                          const Index& index) {
  if (!footprint.has_update || index.table != footprint.update_table) {
    return false;
  }
  if (footprint.update_kind != StatementKind::kUpdate) return true;
  for (ColumnId c : footprint.update_set_columns) {
    if (IndexContainsColumn(index, c)) return true;
  }
  return false;
}

bool IndexRelevant(const QueryFootprint& footprint, const Index& index) {
  for (const AccessFootprint& a : footprint.accesses) {
    if (IndexRelevantToAccess(a, index)) return true;
  }
  return IndexTouchedByUpdate(footprint, index);
}

bool ViewSelectRelevant(const QueryFootprint& footprint,
                        const MaterializedView& view) {
  if (!footprint.has_joins) return false;
  if (view.tables != footprint.view_tables) return false;
  if (view.join_signature != footprint.join_signature) return false;
  for (const ColumnRef& g : footprint.group_by) {
    if (std::find(view.group_by.begin(), view.group_by.end(), g) ==
        view.group_by.end()) {
      return false;
    }
  }
  for (const ColumnRef& r : footprint.referenced_refs) {
    if (std::find(view.exposed_columns.begin(), view.exposed_columns.end(),
                  r) == view.exposed_columns.end()) {
      return false;
    }
  }
  return true;
}

bool ViewRelevant(const QueryFootprint& footprint,
                  const MaterializedView& view) {
  if (ViewSelectRelevant(footprint, view)) return true;
  return footprint.has_update && view.References(footprint.update_table);
}

void RelevantStructurePositions(const QueryFootprint& footprint,
                                const Configuration& config,
                                std::vector<uint32_t>* index_positions,
                                std::vector<uint32_t>* view_positions) {
  for (const AccessFootprint& a : footprint.accesses) {
    for (uint32_t pos : config.IndexesOnTable(a.table)) {
      if (IndexRelevantToAccess(a, config.indexes()[pos])) {
        index_positions->push_back(pos);
      }
    }
  }
  if (footprint.has_update) {
    for (uint32_t pos : config.IndexesOnTable(footprint.update_table)) {
      if (IndexTouchedByUpdate(footprint, config.indexes()[pos])) {
        index_positions->push_back(pos);
      }
    }
    for (uint32_t pos : config.ViewsOnTable(footprint.update_table)) {
      view_positions->push_back(pos);
    }
  }
  if (footprint.has_joins && !config.views().empty()) {
    // View matching is whole-shape, not per-table: scan all views. A
    // first-table filter would also be correct, but view sets are small.
    for (uint32_t pos = 0; pos < config.views().size(); ++pos) {
      if (ViewSelectRelevant(footprint, config.views()[pos])) {
        view_positions->push_back(pos);
      }
    }
  }
  std::sort(index_positions->begin(), index_positions->end());
  index_positions->erase(
      std::unique(index_positions->begin(), index_positions->end()),
      index_positions->end());
  std::sort(view_positions->begin(), view_positions->end());
  view_positions->erase(
      std::unique(view_positions->begin(), view_positions->end()),
      view_positions->end());
}

}  // namespace pdx
