// Copyright (c) the pdexplore authors.
// Cost bounds for unsampled queries (paper §6.1). The bound machinery of
// §6.2 (conservative sigma^2_max / G1_max) consumes per-query intervals
// [low_i, high_i] that are guaranteed to contain Cost(q_i, C) for every
// configuration C under consideration:
//
//   * SELECT statements: a well-behaved optimizer's cost only improves as
//     structures are added, so Cost(q, base) is an upper bound for any
//     C >= base, and Cost(q, rich) — rich containing all structures that
//     may be useful to q — is a lower bound.
//   * UPDATE/INSERT/DELETE statements are split into a SELECT part
//     (bounded as above) and a pure-update part whose cost is monotone in
//     statement selectivity, so per template the instances with extreme
//     selectivities bound all others: 2 optimizer calls per template and
//     configuration.
#pragma once

#include <cmath>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "optimizer/what_if.h"

namespace pdx {

/// A closed cost interval.
struct CostInterval {
  double low = 0.0;
  double high = 0.0;

  CostInterval() = default;
  /// Validating constructor: NaN endpoints abort (a NaN bound carries no
  /// information and would silently poison the §6.2 DP/vertex searches),
  /// and inverted intervals (lo > hi, e.g. optimizer round-off on a
  /// near-tie) are normalized by swapping. Zero-width intervals are legal:
  /// they encode an exactly-known cost.
  CostInterval(double lo, double hi) : low(lo), high(hi) {
    PDX_CHECK_MSG(!std::isnan(lo) && !std::isnan(hi),
                  "CostInterval endpoint is NaN");
    if (low > high) std::swap(low, high);
  }

  double width() const { return high - low; }
  bool Contains(double v) const { return v >= low && v <= high; }
};

/// Derives per-query cost intervals for a workload.
class CostBoundsDeriver {
 public:
  /// `base` must be contained in every configuration that will be compared
  /// (typically empty or the currently deployed structures); `rich` must
  /// contain every structure any compared configuration may use (e.g.
  /// CandidateGenerator::RichConfiguration).
  CostBoundsDeriver(const WhatIfOptimizer& optimizer, const Workload& workload,
                    Configuration base, Configuration rich);

  /// Interval for the SELECT part of one query (2 optimizer calls). The
  /// result is configuration-independent: it brackets Cost(q, C) for every
  /// base_ <= C <= rich_, so one derivation serves all compared configs.
  CostInterval SelectBounds(const Query& query) const;

  /// Interval for the pure-update part of every instance of template `t`
  /// evaluated in `config` (2 optimizer calls on the template's
  /// selectivity extremes; zero-width {0,0} for SELECT-only templates).
  /// Unlike SelectBounds this depends on `config` (update maintenance cost
  /// is structure-dependent), so callers cache it per (template, config).
  CostInterval UpdateBounds(TemplateId t, const Configuration& config) const;

  /// True iff template `t` has at least one DML instance (and therefore a
  /// non-trivial update part needing per-config derivation).
  bool TemplateHasDml(TemplateId t) const {
    return template_extremes_[t].has_dml;
  }

  const Workload& workload() const { return workload_; }

  /// Intervals valid for configuration `config` for all queries of the
  /// workload. SELECT parts use the base/rich pair; update parts use the
  /// per-template selectivity extremes evaluated in `config` (2 calls per
  /// DML template). The result is indexed by QueryId.
  std::vector<CostInterval> WorkloadBounds(const Configuration& config) const;

  /// Intervals for the *difference* Cost(q, c1) - Cost(q, c2), valid for
  /// the given pair — used to bound Delta-Sampling distributions:
  /// [low1 - high2, high1 - low2].
  std::vector<CostInterval> DeltaBounds(const Configuration& c1,
                                        const Configuration& c2) const;

  const Configuration& base() const { return base_; }
  const Configuration& rich() const { return rich_; }

 private:
  struct TemplateExtremes {
    QueryId min_sel_query = 0;
    QueryId max_sel_query = 0;
    bool has_dml = false;
  };

  const WhatIfOptimizer& optimizer_;
  const Workload& workload_;
  Configuration base_;
  Configuration rich_;
  /// Per-template DML selectivity extremes (precomputed, no optimizer calls).
  std::vector<TemplateExtremes> template_extremes_;
};

}  // namespace pdx
