// Copyright (c) the pdexplore authors.
// Cost bounds for unsampled queries (paper §6.1). The bound machinery of
// §6.2 (conservative sigma^2_max / G1_max) consumes per-query intervals
// [low_i, high_i] that are guaranteed to contain Cost(q_i, C) for every
// configuration C under consideration:
//
//   * SELECT statements: a well-behaved optimizer's cost only improves as
//     structures are added, so Cost(q, base) is an upper bound for any
//     C >= base, and Cost(q, rich) — rich containing all structures that
//     may be useful to q — is a lower bound.
//   * UPDATE/INSERT/DELETE statements are split into a SELECT part
//     (bounded as above) and a pure-update part whose cost is monotone in
//     statement selectivity, so per template the instances with extreme
//     selectivities bound all others: 2 optimizer calls per template and
//     configuration.
#pragma once

#include <vector>

#include "optimizer/what_if.h"

namespace pdx {

/// A closed cost interval.
struct CostInterval {
  double low = 0.0;
  double high = 0.0;

  double width() const { return high - low; }
  bool Contains(double v) const { return v >= low && v <= high; }
};

/// Derives per-query cost intervals for a workload.
class CostBoundsDeriver {
 public:
  /// `base` must be contained in every configuration that will be compared
  /// (typically empty or the currently deployed structures); `rich` must
  /// contain every structure any compared configuration may use (e.g.
  /// CandidateGenerator::RichConfiguration).
  CostBoundsDeriver(const WhatIfOptimizer& optimizer, const Workload& workload,
                    Configuration base, Configuration rich);

  /// Interval for the SELECT part of one query (2 optimizer calls).
  CostInterval SelectBounds(const Query& query) const;

  /// Intervals valid for configuration `config` for all queries of the
  /// workload. SELECT parts use the base/rich pair; update parts use the
  /// per-template selectivity extremes evaluated in `config` (2 calls per
  /// DML template). The result is indexed by QueryId.
  std::vector<CostInterval> WorkloadBounds(const Configuration& config) const;

  /// Intervals for the *difference* Cost(q, c1) - Cost(q, c2), valid for
  /// the given pair — used to bound Delta-Sampling distributions:
  /// [low1 - high2, high1 - low2].
  std::vector<CostInterval> DeltaBounds(const Configuration& c1,
                                        const Configuration& c2) const;

  const Configuration& base() const { return base_; }
  const Configuration& rich() const { return rich_; }

 private:
  struct TemplateExtremes {
    QueryId min_sel_query = 0;
    QueryId max_sel_query = 0;
    bool has_dml = false;
  };

  const WhatIfOptimizer& optimizer_;
  const Workload& workload_;
  Configuration base_;
  Configuration rich_;
  /// Per-template DML selectivity extremes (precomputed, no optimizer calls).
  std::vector<TemplateExtremes> template_extremes_;
};

}  // namespace pdx
