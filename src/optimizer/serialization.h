// Copyright (c) the pdexplore authors.
// Text serialization of schemas, workloads and configurations.
//
// A physical design tool's artifacts outlive a process: traced workloads
// are tuned later, recommended configurations are reviewed before
// deployment, and experiments must be reproducible from files. This module
// persists the simulator's objects in a line-oriented, versioned, human-
// diffable text format (one record per line, tab-separated fields,
// nested lists comma-separated).
//
// Round-trip guarantees (covered by tests): Load(Save(x)) reproduces the
// object exactly — including per-predicate selectivities, so costs computed
// from a reloaded workload are bit-identical.
#pragma once

#include <string>

#include "catalog/schema.h"
#include "common/status.h"
#include "optimizer/physical_design.h"
#include "workload/workload.h"

namespace pdx {

/// Serializes a schema (tables, columns, statistics).
Status SaveSchema(const Schema& schema, const std::string& path);
Result<Schema> LoadSchema(const std::string& path);

/// Serializes a workload (templates and full query IR). The schema is
/// referenced by name and validated on load.
Status SaveWorkload(const Workload& workload, const std::string& path);
/// `schema` must outlive the returned workload.
Result<Workload> LoadWorkload(const std::string& path, const Schema& schema);

/// Serializes a configuration (indexes and materialized views).
Status SaveConfiguration(const Configuration& config, const Schema& schema,
                         const std::string& path);
Result<Configuration> LoadConfiguration(const std::string& path,
                                        const Schema& schema);

}  // namespace pdx
