// Copyright (c) the pdexplore authors.
// Per-query candidate physical structures — the component §6.1 relies on:
// "All automated physical design tools known to us have components that
// suggest a set of structures the query may benefit from". Used to build
// the merged "rich" configuration for lower cost bounds, and by the tuner
// to enumerate candidate configurations.
#pragma once

#include <vector>

#include "optimizer/cost_model.h"
#include "optimizer/physical_design.h"
#include "workload/workload.h"

namespace pdx {

/// Candidate structures for one query.
struct QueryCandidates {
  std::vector<Index> indexes;
  std::vector<MaterializedView> views;
};

/// Options controlling candidate generation.
struct CandidateGenOptions {
  /// Generate covering-index variants (keys + referenced columns).
  bool covering_variants = true;
  /// Generate join-column indexes (enables index-nested-loop joins).
  bool join_indexes = true;
  /// Generate grouping indexes (streaming aggregation).
  bool group_indexes = true;
  /// Generate materialized-view candidates for join queries.
  bool view_candidates = true;
  /// Skip index candidates on tables smaller than this many pages
  /// (indexes on tiny tables never pay off).
  uint64_t min_table_pages = 2;
};

/// Generates candidate structures from query shapes and catalog statistics.
class CandidateGenerator {
 public:
  CandidateGenerator(const Schema& schema, CandidateGenOptions options = {})
      : schema_(schema), model_(schema), options_(options) {}

  /// Structures potentially useful to `query`.
  QueryCandidates ForQuery(const Query& query) const;

  /// Union of candidates over one representative query per template
  /// (instances of a template share candidate shapes), deduplicated.
  QueryCandidates ForWorkload(const Workload& workload) const;

  /// The merged configuration containing every candidate for the workload:
  /// the "configuration containing all indexes and views that may be useful
  /// to Q" used for lower cost bounds (§6.1).
  Configuration RichConfiguration(const Workload& workload) const;

 private:
  void AddAccessCandidates(const SelectSpec& spec, const TableAccess& access,
                           QueryCandidates* out) const;
  void AddViewCandidate(const SelectSpec& spec, QueryCandidates* out) const;

  const Schema& schema_;
  CostModel model_;
  CandidateGenOptions options_;
};

}  // namespace pdx
