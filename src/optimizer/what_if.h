// Copyright (c) the pdexplore authors.
// The what-if optimizer: Cost(q, C) — "the optimizer-estimated cost of
// executing Q if configuration C were present" [8]. This is the substrate
// the whole paper runs against; in the original work it is SQL Server's
// optimizer behind the what-if API. Ours is a deterministic analytical
// model with the properties the paper's techniques rely on:
//
//   * access-path choice (heap scan / index seek / covering scans),
//     index-nested-loop vs. hash joins, sort avoidance, view matching —
//     so costs respond to physical design structures;
//   * SELECT costs are monotone non-increasing as structures are added
//     (a "well-behaved" optimizer, §6.1), enabling base-configuration
//     upper bounds;
//   * pure-update costs grow with statement selectivity (§6.1);
//   * costs are heavily skewed across templates and mildly varying within
//     a template, giving the distribution shape of §7.
//
// Every Cost() invocation increments an optimizer-call counter — the
// resource the comparison primitive is designed to conserve.
//
// Thread-safety: Cost()/CostExplained()/TotalCost() are safe to call
// concurrently. The cost model and schema are immutable after
// construction; the only state Cost() mutates is the pair of call
// counters, which are atomics updated with relaxed ordering. Note that
// weighted_calls() is a floating-point sum accumulated across threads,
// so its last-ulp rounding can differ between thread counts; the integer
// num_calls() is exact everywhere.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "optimizer/cost_model.h"
#include "optimizer/physical_design.h"
#include "workload/workload.h"

namespace pdx {

/// Optional plan breakdown returned by CostExplained.
struct PlanExplanation {
  double total_cost = 0.0;
  double select_cost = 0.0;
  double update_cost = 0.0;
  bool used_view = false;
  /// Human-readable chosen access path per table access.
  std::vector<std::string> access_paths;
};

/// Deterministic what-if cost oracle with call accounting.
class WhatIfOptimizer {
 public:
  explicit WhatIfOptimizer(const Schema& schema, CostConstants constants = {})
      : model_(schema, constants) {}

  /// Optimizer-estimated cost of `query` under `config`. Counts one
  /// optimizer call (weighted by the query's optimize_overhead in
  /// weighted_calls()). Logically const and safe to call concurrently:
  /// the model is immutable, and the call counters are atomic.
  double Cost(const Query& query, const Configuration& config) const;

  /// As Cost, filling `explanation` (may be nullptr).
  double CostExplained(const Query& query, const Configuration& config,
                       PlanExplanation* explanation) const;

  /// Sum of Cost over all queries of `workload` (makes |workload| calls).
  double TotalCost(const Workload& workload, const Configuration& config) const;

  /// Number of Cost() invocations since construction / last reset.
  uint64_t num_calls() const {
    return calls_.load(std::memory_order_relaxed);
  }
  /// Calls weighted by per-query optimization overhead (§5.2).
  double weighted_calls() const {
    return weighted_calls_.load(std::memory_order_relaxed);
  }
  void ResetCallCounter() const {
    calls_.store(0, std::memory_order_relaxed);
    weighted_calls_.store(0.0, std::memory_order_relaxed);
  }

  const CostModel& model() const { return model_; }
  const Schema& schema() const { return model_.schema(); }

 private:
  struct AccessPlan {
    double cost = 0.0;
    /// Rows emitted after applying all local predicates.
    double output_rows = 0.0;
    /// Cost of the cheapest path that delivers rows already ordered by the
    /// query's group-by prefix (aggregation sort can be skipped), or a
    /// negative value when no such path exists. Tracked separately from
    /// `cost` so the caller can minimize (path + aggregation) jointly —
    /// required for SELECT-cost monotonicity under added structures.
    double ordered_cost = -1.0;
    std::string description;
  };

  AccessPlan BestAccessPath(const TableAccess& access,
                            const Configuration& config,
                            const std::vector<ColumnRef>& group_by) const;

  /// Cost of an index-nested-loop probe side for a join, or a negative
  /// value when no suitable index exists in `config`.
  double IndexNestedLoopProbeCost(const TableAccess& inner,
                                  ColumnId inner_join_column,
                                  const Configuration& config) const;

  double SelectCost(const SelectSpec& spec, const Configuration& config,
                    PlanExplanation* explanation) const;

  /// Attempts to answer the query from a matching materialized view;
  /// returns a negative value when no view matches.
  double ViewMatchCost(const SelectSpec& spec,
                       const Configuration& config) const;

  double UpdatePartCost(const Query& query, const Configuration& config) const;

  CostModel model_;
  mutable std::atomic<uint64_t> calls_{0};
  mutable std::atomic<double> weighted_calls_{0.0};
};

}  // namespace pdx
