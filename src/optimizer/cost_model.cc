#include "optimizer/cost_model.h"

#include <algorithm>
#include <cmath>

namespace pdx {

double CostModel::HeapScanCost(TableId table) const {
  const Table& t = schema_.table(table);
  return ScanPagesCost(static_cast<double>(t.HeapPages()),
                       static_cast<double>(t.row_count));
}

double CostModel::ScanPagesCost(double pages, double rows) const {
  return constants_.seq_page * std::max(1.0, pages) +
         constants_.cpu_tuple * std::max(0.0, rows);
}

double CostModel::IndexSeekCost(const Index& index, double matching_rows,
                                bool covering) const {
  double levels = static_cast<double>(index.Levels(schema_));
  double leaf_entries_per_page =
      std::max(1.0, static_cast<double>(Schema::kPageSizeBytes) /
                        index.EntryBytes(schema_));
  double leaf_pages_touched =
      std::max(1.0, matching_rows / leaf_entries_per_page);
  double cost = constants_.random_page * levels +
                constants_.seq_page * (leaf_pages_touched - 1.0) +
                constants_.cpu_tuple * matching_rows;
  if (!covering) {
    // One base-table lookup per matching row, degrading toward sequential
    // behaviour when enough of the table is touched that reads cluster.
    const Table& t = schema_.table(index.table);
    double table_pages = static_cast<double>(t.HeapPages());
    double lookups = std::min(matching_rows, table_pages * 4.0);
    cost += constants_.random_page * lookups;
  }
  return cost;
}

double CostModel::IndexRangeScanCost(const Index& index, double leaf_fraction,
                                     double matching_rows,
                                     bool covering) const {
  leaf_fraction = std::clamp(leaf_fraction, 0.0, 1.0);
  double levels = static_cast<double>(index.Levels(schema_));
  double leaf_pages =
      static_cast<double>(index.LeafPages(schema_)) * leaf_fraction;
  double cost = constants_.random_page * levels +
                constants_.seq_page * std::max(1.0, leaf_pages) +
                constants_.cpu_tuple * matching_rows;
  if (!covering) {
    const Table& t = schema_.table(index.table);
    double table_pages = static_cast<double>(t.HeapPages());
    double lookups = std::min(matching_rows, table_pages * 4.0);
    cost += constants_.random_page * lookups;
  }
  return cost;
}

double CostModel::SortCost(double rows) const {
  if (rows <= 1.0) return 0.0;
  return constants_.sort_compare * rows * std::log2(rows);
}

double CostModel::HashAggregateCost(double rows, double groups) const {
  return constants_.hash_build_tuple * std::max(0.0, groups) +
         constants_.hash_probe_tuple * std::max(0.0, rows);
}

double CostModel::HashJoinCost(double build_rows, double probe_rows) const {
  return constants_.hash_build_tuple * std::max(0.0, build_rows) +
         constants_.hash_probe_tuple * std::max(0.0, probe_rows);
}

double CostModel::ColumnNdv(const ColumnRef& ref) const {
  return static_cast<double>(
      std::max<uint64_t>(1, schema_.column(ref).num_distinct));
}

double CostModel::JoinCardinality(double left_rows, double right_rows,
                                  const ColumnRef& left_col,
                                  const ColumnRef& right_col) const {
  double ndv = std::max(ColumnNdv(left_col), ColumnNdv(right_col));
  double card = left_rows * right_rows / std::max(1.0, ndv);
  return std::max(0.0, card);
}

double CostModel::GroupCardinality(
    double rows, const std::vector<ColumnRef>& columns) const {
  if (columns.empty() || rows <= 0.0) return std::min(rows, 1.0);
  double groups = 1.0;
  for (const ColumnRef& c : columns) groups *= ColumnNdv(c);
  return std::min(rows, groups);
}

}  // namespace pdx
