// Copyright (c) the pdexplore authors.
// Cost-model primitives: the I/O and CPU formulas the what-if optimizer
// composes plans from. Costs are in abstract optimizer units (1.0 = one
// sequential page read), mirroring how commercial optimizers expose
// "estimated subtree cost" numbers that physical design tools consume.
#pragma once

#include <cstdint>

#include "catalog/schema.h"
#include "optimizer/physical_design.h"
#include "workload/query.h"

namespace pdx {

/// Tunable constants of the cost model.
struct CostConstants {
  double seq_page = 1.0;
  double random_page = 4.0;
  double cpu_tuple = 0.01;
  double cpu_operator = 0.0025;
  /// Per-tuple cost of building a hash table.
  double hash_build_tuple = 0.02;
  /// Per-tuple cost of probing a hash table.
  double hash_probe_tuple = 0.01;
  /// Per-tuple-comparison cost of sorting (multiplied by log2 n).
  double sort_compare = 0.004;
  /// Per-affected-structure-entry cost of index/view maintenance.
  double maintenance_tuple = 0.03;
};

/// Stateless cost formulas over catalog metadata.
class CostModel {
 public:
  explicit CostModel(const Schema& schema, CostConstants constants = {})
      : schema_(schema), constants_(constants) {}

  const Schema& schema() const { return schema_; }
  const CostConstants& constants() const { return constants_; }

  /// Full heap scan emitting `t.row_count` tuples.
  double HeapScanCost(TableId table) const;

  /// Cost of scanning `pages` pages sequentially and processing `rows`.
  double ScanPagesCost(double pages, double rows) const;

  /// B-tree seek returning `matching_rows`; `covering` indicates whether
  /// base-table lookups are avoided.
  double IndexSeekCost(const Index& index, double matching_rows,
                       bool covering) const;

  /// Range scan over a fraction of the index leaf level.
  double IndexRangeScanCost(const Index& index, double leaf_fraction,
                            double matching_rows, bool covering) const;

  /// Sort of `rows` tuples.
  double SortCost(double rows) const;

  /// Hash aggregation of `rows` input tuples into `groups` groups.
  double HashAggregateCost(double rows, double groups) const;

  /// Hash join: build on `build_rows`, probe with `probe_rows`.
  double HashJoinCost(double build_rows, double probe_rows) const;

  /// Number of distinct values of a column, from catalog statistics.
  double ColumnNdv(const ColumnRef& ref) const;

  /// Estimated output cardinality of an equi-join between inputs of the
  /// given cardinalities on the given columns (containment assumption).
  double JoinCardinality(double left_rows, double right_rows,
                         const ColumnRef& left_col,
                         const ColumnRef& right_col) const;

  /// Estimated group count when grouping `rows` tuples by `columns`.
  double GroupCardinality(double rows,
                          const std::vector<ColumnRef>& columns) const;

 private:
  const Schema& schema_;
  CostConstants constants_;
};

}  // namespace pdx
