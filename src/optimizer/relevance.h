// Copyright (c) the pdexplore authors.
// Relevant-structure analysis: which physical design structures can
// influence the what-if cost of a query (the CoPhy/Wii "atomic
// configuration" idea). For any (query, configuration) pair, the
// optimizer's cost is a pure function of the query and the *relevant
// subset* of the configuration's structures — every other structure is
// skipped by an applicability check inside WhatIfOptimizer (no sargable
// seek prefix and not covering, wrong join column, non-matching view
// shape, untouched by the DML statement). Canonicalizing a configuration
// down to that subset lets a what-if cache share one optimizer call
// across all configurations that agree on it, which is the dominant
// saving when candidate configurations differ only in structures a query
// can never use.
//
// The predicates here are kept *exactly* in sync with the checks in
// what_if.cc (BestAccessPath / IndexNestedLoopProbeCost / ViewMatchCost /
// UpdatePartCost): a structure is relevant iff the optimizer would
// examine it when costing the query. Over-approximation would only cost
// cache-hit rate; under-approximation would be a correctness bug — the
// property test in tests/test_signature_cache.cc pins bit-identity
// against the uncached optimizer across randomized workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "optimizer/physical_design.h"
#include "workload/workload.h"

namespace pdx {

/// Per-table-access footprint: the column sets the optimizer's index
/// applicability checks consult, precomputed and sorted for binary search.
struct AccessFootprint {
  TableId table = kInvalidTableId;
  /// Columns of `table` the query references (covering-index check);
  /// kept in the access's original order for Index::Covers.
  std::vector<ColumnId> referenced_columns;
  /// Columns with a sargable Eq/In/Range predicate — what MatchSeekPrefix
  /// can anchor a seek on. Sorted, deduplicated.
  std::vector<ColumnId> seek_columns;
  /// Join columns of this access (index-nested-loop probe anchors).
  /// Sorted, deduplicated.
  std::vector<ColumnId> join_columns;
};

/// Everything the relevance tests need to know about one query, computed
/// once per workload (no optimizer calls).
struct QueryFootprint {
  std::vector<AccessFootprint> accesses;
  /// Accessed tables in ViewMatchCost's canonical form (sorted, one entry
  /// per access — not deduplicated, mirroring the optimizer's comparison
  /// against MaterializedView::tables).
  std::vector<TableId> view_tables;
  /// Canonical join-edge signature (empty when the query has no joins).
  std::vector<uint64_t> join_signature;
  /// Grouping columns (view-match subset check).
  std::vector<ColumnRef> group_by;
  /// All fully-qualified columns the query touches (view exposure check).
  std::vector<ColumnRef> referenced_refs;
  bool has_joins = false;
  /// UPDATE part (split DML, §6.1).
  bool has_update = false;
  TableId update_table = kInvalidTableId;
  StatementKind update_kind = StatementKind::kUpdate;
  std::vector<ColumnId> update_set_columns;
};

/// Computes the footprint of one query.
QueryFootprint ComputeFootprint(const Query& query);

/// Footprints of every query of a workload, indexed by QueryId.
std::vector<QueryFootprint> ComputeWorkloadFootprints(const Workload& workload);

/// True iff BestAccessPath or IndexNestedLoopProbeCost would examine
/// `index` for this access: seekable prefix, covering, or a leading key
/// matching a join column.
bool IndexRelevantToAccess(const AccessFootprint& access, const Index& index);

/// True iff UpdatePartCost would charge maintenance for `index`:
/// INSERT/DELETE touch every index on the written table, UPDATE only
/// those containing a written column.
bool IndexTouchedByUpdate(const QueryFootprint& footprint, const Index& index);

/// True iff `index` can influence the query's cost (any access, or the
/// update part).
bool IndexRelevant(const QueryFootprint& footprint, const Index& index);

/// True iff ViewMatchCost would accept `view` for the query's SELECT
/// shape (exact structural match: tables, join signature, grouping
/// subset, column exposure).
bool ViewSelectRelevant(const QueryFootprint& footprint,
                        const MaterializedView& view);

/// True iff `view` can influence the query's cost (select-side match or
/// maintenance under the update part).
bool ViewRelevant(const QueryFootprint& footprint,
                  const MaterializedView& view);

/// Appends the positions (into config.indexes() / config.views()) of all
/// structures relevant to the query, sorted and deduplicated. Uses the
/// configuration's per-table lists, so the cost is proportional to the
/// structures on the query's tables, not to the configuration size.
void RelevantStructurePositions(const QueryFootprint& footprint,
                                const Configuration& config,
                                std::vector<uint32_t>* index_positions,
                                std::vector<uint32_t>* view_positions);

}  // namespace pdx
