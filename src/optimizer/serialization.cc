#include "optimizer/serialization.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace pdx {

namespace {

constexpr const char* kSchemaMagic = "pdx-schema 1";
constexpr const char* kWorkloadMagic = "pdx-workload 1";
constexpr const char* kConfigMagic = "pdx-config 1";

// Doubles are serialized as hexfloats so selectivities round-trip exactly.
std::string HexDouble(double v) { return StringFormat("%a", v); }

Result<double> ParseDouble(const std::string& s) {
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::IOError("bad double '" + s + "'");
  }
  return v;
}

Result<uint64_t> ParseUint(const std::string& s) {
  char* end = nullptr;
  uint64_t v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Status::IOError("bad integer '" + s + "'");
  }
  return v;
}

std::string JoinCsv(const std::vector<ColumnId>& ids) {
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(ids[i]);
  }
  return out.empty() ? "-" : out;
}

Result<std::vector<ColumnId>> ParseCsv(const std::string& s) {
  std::vector<ColumnId> out;
  if (s == "-") return out;
  for (const std::string& piece : SplitString(s, ',')) {
    auto v = ParseUint(piece);
    PDX_RETURN_IF_ERROR(v.status());
    out.push_back(static_cast<ColumnId>(*v));
  }
  return out;
}

std::string JoinRefs(const std::vector<ColumnRef>& refs) {
  std::string out;
  for (size_t i = 0; i < refs.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(refs[i].table) + ":" + std::to_string(refs[i].column);
  }
  return out.empty() ? "-" : out;
}

Result<std::vector<ColumnRef>> ParseRefs(const std::string& s) {
  std::vector<ColumnRef> out;
  if (s == "-") return out;
  for (const std::string& piece : SplitString(s, ',')) {
    auto parts = SplitString(piece, ':');
    if (parts.size() != 2) return Status::IOError("bad column ref '" + piece + "'");
    auto t = ParseUint(parts[0]);
    PDX_RETURN_IF_ERROR(t.status());
    auto c = ParseUint(parts[1]);
    PDX_RETURN_IF_ERROR(c.status());
    out.push_back({static_cast<TableId>(*t), static_cast<ColumnId>(*c)});
  }
  return out;
}

// Tab-separated line reader with a current-line cursor for error messages.
class LineReader {
 public:
  explicit LineReader(const std::string& path) : in_(path), path_(path) {}

  bool ok() const { return in_.good() || in_.eof(); }
  bool opened() const { return !failed_open_; }

  /// Reads the next non-empty line split on tabs; false at EOF.
  bool Next(std::vector<std::string>* fields) {
    std::string line;
    while (std::getline(in_, line)) {
      ++line_no_;
      if (line.empty()) continue;
      *fields = SplitString(line, '\t');
      return true;
    }
    return false;
  }

  Status Error(const std::string& message) const {
    return Status::IOError(path_ + ":" + std::to_string(line_no_) + ": " +
                           message);
  }

  void MarkOpenFailure() { failed_open_ = true; }

 private:
  std::ifstream in_;
  std::string path_;
  int line_no_ = 0;
  bool failed_open_ = false;
};

Result<LineReader*> OpenReader(LineReader* reader, const char* magic) {
  std::vector<std::string> fields;
  if (!reader->Next(&fields) || fields.size() != 1 || fields[0] != magic) {
    return reader->Error(std::string("missing header '") + magic + "'");
  }
  return reader;
}

}  // namespace

// ---------------------------------------------------------------------------
// Schema

Status SaveSchema(const Schema& schema, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot write '" + path + "'");
  out << kSchemaMagic << "\n";
  out << "schema\t" << schema.name() << "\n";
  for (const Table& t : schema.tables()) {
    out << "table\t" << t.name << "\t" << t.row_count << "\n";
    for (const Column& c : t.columns) {
      out << "col\t" << c.name << "\t" << static_cast<int>(c.type) << "\t"
          << c.width_bytes << "\t" << c.num_distinct << "\t"
          << HexDouble(c.zipf_theta) << "\n";
    }
  }
  out.flush();
  return out ? Status::OK() : Status::IOError("write failed for '" + path + "'");
}

Result<Schema> LoadSchema(const std::string& path) {
  std::ifstream probe(path);
  if (!probe) return Status::IOError("cannot open '" + path + "'");
  probe.close();

  LineReader reader(path);
  auto header = OpenReader(&reader, kSchemaMagic);
  PDX_RETURN_IF_ERROR(header.status());

  std::vector<std::string> f;
  if (!reader.Next(&f) || f.size() != 2 || f[0] != "schema") {
    return reader.Error("expected schema record");
  }
  Schema schema(f[1]);
  Table current;
  bool have_table = false;
  auto flush_table = [&]() {
    if (have_table) schema.AddTable(std::move(current));
    current = Table();
    have_table = false;
  };
  while (reader.Next(&f)) {
    if (f[0] == "table") {
      if (f.size() != 3) return reader.Error("bad table record");
      flush_table();
      have_table = true;
      current.name = f[1];
      auto rows = ParseUint(f[2]);
      PDX_RETURN_IF_ERROR(rows.status());
      current.row_count = *rows;
    } else if (f[0] == "col") {
      if (f.size() != 6 || !have_table) return reader.Error("bad col record");
      auto type = ParseUint(f[2]);
      PDX_RETURN_IF_ERROR(type.status());
      auto width = ParseUint(f[3]);
      PDX_RETURN_IF_ERROR(width.status());
      auto ndv = ParseUint(f[4]);
      PDX_RETURN_IF_ERROR(ndv.status());
      auto theta = ParseDouble(f[5]);
      PDX_RETURN_IF_ERROR(theta.status());
      current.columns.emplace_back(f[1], static_cast<DataType>(*type),
                                   static_cast<uint32_t>(*width), *ndv,
                                   *theta);
    } else {
      return reader.Error("unknown record '" + f[0] + "'");
    }
  }
  flush_table();
  PDX_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

// ---------------------------------------------------------------------------
// Workload

Status SaveWorkload(const Workload& workload, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot write '" + path + "'");
  out << kWorkloadMagic << "\n";
  out << "schema\t" << workload.schema().name() << "\n";

  for (const QueryTemplate& t : workload.templates()) {
    std::string tables;
    for (size_t i = 0; i < t.tables.size(); ++i) {
      if (i > 0) tables += ",";
      tables += std::to_string(t.tables[i]);
    }
    if (tables.empty()) tables.push_back('-');
    out << "template\t" << t.id << "\t" << t.name << "\t"
        << static_cast<int>(t.kind) << "\t" << t.signature << "\t" << tables
        << "\n";
  }

  for (const Query& q : workload.queries()) {
    out << "query\t" << q.id << "\t" << q.template_id << "\t"
        << static_cast<int>(q.kind) << "\t" << HexDouble(q.optimize_overhead)
        << "\n";
    for (const TableAccess& a : q.select.accesses) {
      out << "access\t" << a.table << "\t" << JoinCsv(a.referenced_columns)
          << "\n";
      for (const Predicate& p : a.predicates) {
        out << "pred\t" << p.column.table << "\t" << p.column.column << "\t"
            << static_cast<int>(p.op) << "\t" << HexDouble(p.selectivity)
            << "\t" << (p.sargable ? 1 : 0) << "\t" << p.value_rank << "\t"
            << HexDouble(p.domain_fraction) << "\n";
      }
    }
    for (const JoinEdge& j : q.select.joins) {
      out << "join\t" << j.left_access << "\t" << j.right_access << "\t"
          << j.left_column << "\t" << j.right_column << "\n";
    }
    if (!q.select.group_by.empty()) {
      out << "groupby\t" << JoinRefs(q.select.group_by) << "\n";
    }
    if (!q.select.order_by.empty()) {
      out << "orderby\t" << JoinRefs(q.select.order_by) << "\n";
    }
    if (q.select.num_aggregates > 0) {
      out << "agg\t" << q.select.num_aggregates << "\n";
    }
    if (q.update.has_value()) {
      out << "update\t" << q.update->table << "\t"
          << static_cast<int>(q.update->kind) << "\t"
          << HexDouble(q.update->selectivity) << "\t"
          << JoinCsv(q.update->set_columns) << "\n";
    }
    out << "end\n";
  }
  out.flush();
  return out ? Status::OK() : Status::IOError("write failed for '" + path + "'");
}

Result<Workload> LoadWorkload(const std::string& path, const Schema& schema) {
  std::ifstream probe(path);
  if (!probe) return Status::IOError("cannot open '" + path + "'");
  probe.close();

  LineReader reader(path);
  auto header = OpenReader(&reader, kWorkloadMagic);
  PDX_RETURN_IF_ERROR(header.status());

  std::vector<std::string> f;
  if (!reader.Next(&f) || f.size() != 2 || f[0] != "schema") {
    return reader.Error("expected schema record");
  }
  if (f[1] != schema.name()) {
    return Status::InvalidArgument("workload was saved against schema '" +
                                   f[1] + "', got '" + schema.name() + "'");
  }

  Workload workload(&schema);
  Query query;
  bool in_query = false;
  int current_access = -1;

  while (reader.Next(&f)) {
    const std::string& tag = f[0];
    if (tag == "template") {
      if (f.size() != 6) return reader.Error("bad template record");
      QueryTemplate t;
      t.name = f[2];
      auto kind = ParseUint(f[3]);
      PDX_RETURN_IF_ERROR(kind.status());
      t.kind = static_cast<StatementKind>(*kind);
      auto sig = ParseUint(f[4]);
      PDX_RETURN_IF_ERROR(sig.status());
      t.signature = *sig;
      if (f[5] != "-") {
        for (const std::string& piece : SplitString(f[5], ',')) {
          auto id = ParseUint(piece);
          PDX_RETURN_IF_ERROR(id.status());
          t.tables.push_back(static_cast<TableId>(*id));
        }
      }
      workload.AddTemplate(std::move(t));
    } else if (tag == "query") {
      if (f.size() != 5) return reader.Error("bad query record");
      if (in_query) return reader.Error("query without end");
      query = Query();
      in_query = true;
      current_access = -1;
      auto tmpl = ParseUint(f[2]);
      PDX_RETURN_IF_ERROR(tmpl.status());
      query.template_id = static_cast<TemplateId>(*tmpl);
      auto kind = ParseUint(f[3]);
      PDX_RETURN_IF_ERROR(kind.status());
      query.kind = static_cast<StatementKind>(*kind);
      auto overhead = ParseDouble(f[4]);
      PDX_RETURN_IF_ERROR(overhead.status());
      query.optimize_overhead = *overhead;
    } else if (tag == "access") {
      if (f.size() != 3 || !in_query) return reader.Error("bad access record");
      TableAccess a;
      auto table = ParseUint(f[1]);
      PDX_RETURN_IF_ERROR(table.status());
      a.table = static_cast<TableId>(*table);
      auto refs = ParseCsv(f[2]);
      PDX_RETURN_IF_ERROR(refs.status());
      a.referenced_columns = *refs;
      query.select.accesses.push_back(std::move(a));
      current_access = static_cast<int>(query.select.accesses.size()) - 1;
    } else if (tag == "pred") {
      if (f.size() != 8 || current_access < 0) {
        return reader.Error("bad pred record");
      }
      Predicate p;
      auto t = ParseUint(f[1]);
      PDX_RETURN_IF_ERROR(t.status());
      auto c = ParseUint(f[2]);
      PDX_RETURN_IF_ERROR(c.status());
      p.column = {static_cast<TableId>(*t), static_cast<ColumnId>(*c)};
      auto op = ParseUint(f[3]);
      PDX_RETURN_IF_ERROR(op.status());
      p.op = static_cast<PredOp>(*op);
      auto sel = ParseDouble(f[4]);
      PDX_RETURN_IF_ERROR(sel.status());
      p.selectivity = *sel;
      p.sargable = f[5] == "1";
      auto rank = ParseUint(f[6]);
      PDX_RETURN_IF_ERROR(rank.status());
      p.value_rank = *rank;
      auto frac = ParseDouble(f[7]);
      PDX_RETURN_IF_ERROR(frac.status());
      p.domain_fraction = *frac;
      query.select.accesses[current_access].predicates.push_back(p);
    } else if (tag == "join") {
      if (f.size() != 5 || !in_query) return reader.Error("bad join record");
      JoinEdge j;
      auto l = ParseUint(f[1]);
      PDX_RETURN_IF_ERROR(l.status());
      auto r = ParseUint(f[2]);
      PDX_RETURN_IF_ERROR(r.status());
      auto lc = ParseUint(f[3]);
      PDX_RETURN_IF_ERROR(lc.status());
      auto rc = ParseUint(f[4]);
      PDX_RETURN_IF_ERROR(rc.status());
      j.left_access = static_cast<uint32_t>(*l);
      j.right_access = static_cast<uint32_t>(*r);
      j.left_column = static_cast<ColumnId>(*lc);
      j.right_column = static_cast<ColumnId>(*rc);
      query.select.joins.push_back(j);
    } else if (tag == "groupby") {
      if (f.size() != 2 || !in_query) return reader.Error("bad groupby");
      auto refs = ParseRefs(f[1]);
      PDX_RETURN_IF_ERROR(refs.status());
      query.select.group_by = *refs;
    } else if (tag == "orderby") {
      if (f.size() != 2 || !in_query) return reader.Error("bad orderby");
      auto refs = ParseRefs(f[1]);
      PDX_RETURN_IF_ERROR(refs.status());
      query.select.order_by = *refs;
    } else if (tag == "agg") {
      if (f.size() != 2 || !in_query) return reader.Error("bad agg");
      auto n = ParseUint(f[1]);
      PDX_RETURN_IF_ERROR(n.status());
      query.select.num_aggregates = static_cast<uint32_t>(*n);
    } else if (tag == "update") {
      if (f.size() != 5 || !in_query) return reader.Error("bad update");
      UpdateSpec u;
      auto t = ParseUint(f[1]);
      PDX_RETURN_IF_ERROR(t.status());
      u.table = static_cast<TableId>(*t);
      auto kind = ParseUint(f[2]);
      PDX_RETURN_IF_ERROR(kind.status());
      u.kind = static_cast<StatementKind>(*kind);
      auto sel = ParseDouble(f[3]);
      PDX_RETURN_IF_ERROR(sel.status());
      u.selectivity = *sel;
      auto cols = ParseCsv(f[4]);
      PDX_RETURN_IF_ERROR(cols.status());
      u.set_columns = *cols;
      query.update = std::move(u);
    } else if (tag == "end") {
      if (!in_query) return reader.Error("end without query");
      workload.AddQuery(std::move(query));
      in_query = false;
    } else {
      return reader.Error("unknown record '" + tag + "'");
    }
  }
  if (in_query) return reader.Error("truncated file: query without end");
  PDX_RETURN_IF_ERROR(workload.Validate());
  return workload;
}

// ---------------------------------------------------------------------------
// Configuration

Status SaveConfiguration(const Configuration& config, const Schema& schema,
                         const std::string& path) {
  (void)schema;  // reserved for name validation on save
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot write '" + path + "'");
  out << kConfigMagic << "\n";
  out << "schema\t" << schema.name() << "\n";
  out << "name\t" << (config.name().empty() ? "-" : config.name()) << "\n";
  for (const Index& i : config.indexes()) {
    out << "index\t" << i.table << "\t" << JoinCsv(i.key_columns) << "\t"
        << JoinCsv(i.include_columns) << "\n";
  }
  for (const MaterializedView& v : config.views()) {
    std::string tables;
    for (size_t i = 0; i < v.tables.size(); ++i) {
      if (i > 0) tables += ",";
      tables += std::to_string(v.tables[i]);
    }
    std::string sig;
    for (size_t i = 0; i < v.join_signature.size(); ++i) {
      if (i > 0) sig += ",";
      sig += std::to_string(v.join_signature[i]);
    }
    out << "view\t" << (v.name.empty() ? "-" : v.name) << "\t" << v.row_count
        << "\t" << (tables.empty() ? "-" : tables) << "\t"
        << (sig.empty() ? "-" : sig) << "\t" << JoinRefs(v.group_by) << "\t"
        << JoinRefs(v.exposed_columns) << "\n";
  }
  out.flush();
  return out ? Status::OK() : Status::IOError("write failed for '" + path + "'");
}

Result<Configuration> LoadConfiguration(const std::string& path,
                                        const Schema& schema) {
  std::ifstream probe(path);
  if (!probe) return Status::IOError("cannot open '" + path + "'");
  probe.close();

  LineReader reader(path);
  auto header = OpenReader(&reader, kConfigMagic);
  PDX_RETURN_IF_ERROR(header.status());

  std::vector<std::string> f;
  if (!reader.Next(&f) || f.size() != 2 || f[0] != "schema") {
    return reader.Error("expected schema record");
  }
  if (f[1] != schema.name()) {
    return Status::InvalidArgument("configuration was saved against schema '" +
                                   f[1] + "', got '" + schema.name() + "'");
  }
  if (!reader.Next(&f) || f.size() != 2 || f[0] != "name") {
    return reader.Error("expected name record");
  }
  Configuration config(f[1] == "-" ? "" : f[1]);

  while (reader.Next(&f)) {
    if (f[0] == "index") {
      if (f.size() != 4) return reader.Error("bad index record");
      Index i;
      auto table = ParseUint(f[1]);
      PDX_RETURN_IF_ERROR(table.status());
      i.table = static_cast<TableId>(*table);
      if (i.table >= schema.num_tables()) {
        return reader.Error("index table out of range");
      }
      auto keys = ParseCsv(f[2]);
      PDX_RETURN_IF_ERROR(keys.status());
      i.key_columns = *keys;
      auto incl = ParseCsv(f[3]);
      PDX_RETURN_IF_ERROR(incl.status());
      i.include_columns = *incl;
      for (ColumnId c : i.key_columns) {
        if (c >= schema.table(i.table).columns.size()) {
          return reader.Error("index key column out of range");
        }
      }
      config.AddIndex(std::move(i));
    } else if (f[0] == "view") {
      if (f.size() != 7) return reader.Error("bad view record");
      MaterializedView v;
      v.name = f[1] == "-" ? "" : f[1];
      auto rows = ParseUint(f[2]);
      PDX_RETURN_IF_ERROR(rows.status());
      v.row_count = *rows;
      if (f[3] != "-") {
        for (const std::string& piece : SplitString(f[3], ',')) {
          auto id = ParseUint(piece);
          PDX_RETURN_IF_ERROR(id.status());
          v.tables.push_back(static_cast<TableId>(*id));
        }
      }
      if (f[4] != "-") {
        for (const std::string& piece : SplitString(f[4], ',')) {
          auto sig = ParseUint(piece);
          PDX_RETURN_IF_ERROR(sig.status());
          v.join_signature.push_back(*sig);
        }
      }
      auto group = ParseRefs(f[5]);
      PDX_RETURN_IF_ERROR(group.status());
      v.group_by = *group;
      auto exposed = ParseRefs(f[6]);
      PDX_RETURN_IF_ERROR(exposed.status());
      v.exposed_columns = *exposed;
      config.AddView(std::move(v));
    } else {
      return reader.Error("unknown record '" + f[0] + "'");
    }
  }
  return config;
}

}  // namespace pdx
