#include "optimizer/candidate_gen.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace pdx {

namespace {

// Appends `extra` columns to `base` skipping duplicates; used to build
// covering include lists.
std::vector<ColumnId> IncludesFor(const std::vector<ColumnId>& keys,
                                  const std::vector<ColumnId>& referenced) {
  std::vector<ColumnId> includes;
  for (ColumnId c : referenced) {
    if (std::find(keys.begin(), keys.end(), c) == keys.end()) {
      includes.push_back(c);
    }
  }
  std::sort(includes.begin(), includes.end());
  return includes;
}

}  // namespace

void CandidateGenerator::AddAccessCandidates(const SelectSpec& spec,
                                             const TableAccess& access,
                                             QueryCandidates* out) const {
  const Table& table = schema_.table(access.table);
  if (table.HeapPages() < options_.min_table_pages) return;

  // Sargable predicate columns: equality columns ordered by ascending
  // selectivity (most selective first), then at most one range column.
  std::vector<const Predicate*> eqs;
  const Predicate* best_range = nullptr;
  for (const Predicate& p : access.predicates) {
    if (!p.sargable) continue;
    if (p.op == PredOp::kEq || p.op == PredOp::kIn) {
      eqs.push_back(&p);
    } else if (p.op == PredOp::kRange) {
      if (best_range == nullptr || p.selectivity < best_range->selectivity) {
        best_range = &p;
      }
    }
  }
  std::sort(eqs.begin(), eqs.end(), [](const Predicate* a, const Predicate* b) {
    return a->selectivity < b->selectivity;
  });

  std::vector<ColumnId> keys;
  for (const Predicate* p : eqs) {
    if (std::find(keys.begin(), keys.end(), p->column.column) == keys.end()) {
      keys.push_back(p->column.column);
    }
  }
  if (best_range != nullptr &&
      std::find(keys.begin(), keys.end(), best_range->column.column) ==
          keys.end()) {
    keys.push_back(best_range->column.column);
  }

  if (!keys.empty()) {
    Index plain;
    plain.table = access.table;
    plain.key_columns = keys;
    out->indexes.push_back(plain);
    if (options_.covering_variants) {
      Index covering = plain;
      covering.include_columns = IncludesFor(keys, access.referenced_columns);
      if (!covering.include_columns.empty()) {
        out->indexes.push_back(std::move(covering));
      }
    }
  }

  // Join-column indexes.
  if (options_.join_indexes) {
    for (const JoinEdge& j : spec.joins) {
      ColumnId col = kInvalidColumnId;
      if (&spec.accesses[j.left_access] == &access) col = j.left_column;
      if (&spec.accesses[j.right_access] == &access) col = j.right_column;
      if (col == kInvalidColumnId) continue;
      Index ji;
      ji.table = access.table;
      ji.key_columns = {col};
      out->indexes.push_back(ji);
      if (options_.covering_variants) {
        Index cov = ji;
        cov.include_columns = IncludesFor(ji.key_columns,
                                          access.referenced_columns);
        if (!cov.include_columns.empty()) out->indexes.push_back(std::move(cov));
      }
    }
  }

  // Grouping index: keys = group-by columns on this table (streaming agg),
  // covering the referenced columns. Only for single-table queries, where
  // the optimizer can exploit the delivered order.
  if (options_.group_indexes && spec.IsSingleTable() && !spec.group_by.empty()) {
    std::vector<ColumnId> gkeys;
    for (const ColumnRef& g : spec.group_by) {
      if (g.table == access.table) gkeys.push_back(g.column);
    }
    if (!gkeys.empty()) {
      Index gi;
      gi.table = access.table;
      gi.key_columns = gkeys;
      if (options_.covering_variants) {
        gi.include_columns = IncludesFor(gkeys, access.referenced_columns);
      }
      out->indexes.push_back(std::move(gi));
    }
  }
}

void CandidateGenerator::AddViewCandidate(const SelectSpec& spec,
                                          QueryCandidates* out) const {
  if (!options_.view_candidates) return;
  if (spec.joins.empty()) return;
  // Views pay off for multi-join or aggregating join queries.
  if (spec.joins.size() < 2 && spec.group_by.empty()) return;

  MaterializedView view;
  for (const TableAccess& a : spec.accesses) view.tables.push_back(a.table);
  std::sort(view.tables.begin(), view.tables.end());

  std::vector<std::pair<ColumnRef, ColumnRef>> edges;
  for (const JoinEdge& j : spec.joins) {
    edges.push_back({{spec.accesses[j.left_access].table, j.left_column},
                     {spec.accesses[j.right_access].table, j.right_column}});
  }
  view.join_signature = MakeJoinSignature(edges);

  // Group by the query's grouping columns plus every predicate column, so
  // differently-parameterized instances of the template can still filter
  // the view.
  std::vector<ColumnRef> group_cols = spec.group_by;
  for (const TableAccess& a : spec.accesses) {
    for (const Predicate& p : a.predicates) group_cols.push_back(p.column);
  }
  std::sort(group_cols.begin(), group_cols.end());
  group_cols.erase(std::unique(group_cols.begin(), group_cols.end()),
                   group_cols.end());
  view.group_by = group_cols;

  // Expose everything the query touches.
  std::vector<ColumnRef> exposed;
  for (const TableAccess& a : spec.accesses) {
    for (ColumnId c : a.referenced_columns) exposed.push_back({a.table, c});
  }
  for (const ColumnRef& g : group_cols) exposed.push_back(g);
  std::sort(exposed.begin(), exposed.end());
  exposed.erase(std::unique(exposed.begin(), exposed.end()), exposed.end());
  view.exposed_columns = exposed;

  // Materialized cardinality: the unfiltered join result collapsed to the
  // view's grouping granularity.
  double join_rows = 0.0;
  {
    std::unordered_set<uint32_t> joined;
    uint32_t first = spec.joins[0].left_access;
    join_rows =
        static_cast<double>(schema_.table(spec.accesses[first].table).row_count);
    joined.insert(first);
    for (const JoinEdge& j : spec.joins) {
      bool left_in = joined.count(j.left_access) > 0;
      bool right_in = joined.count(j.right_access) > 0;
      if (left_in && right_in) continue;
      uint32_t inner = left_in ? j.right_access : j.left_access;
      ColumnId inner_col = left_in ? j.right_column : j.left_column;
      ColumnId outer_col = left_in ? j.left_column : j.right_column;
      uint32_t outer = left_in ? j.left_access : j.right_access;
      double inner_rows =
          static_cast<double>(schema_.table(spec.accesses[inner].table).row_count);
      join_rows = model_.JoinCardinality(
          join_rows, inner_rows, {spec.accesses[outer].table, outer_col},
          {spec.accesses[inner].table, inner_col});
      joined.insert(inner);
    }
  }
  double groups = model_.GroupCardinality(join_rows, view.group_by);
  view.row_count = static_cast<uint64_t>(std::max(1.0, groups));
  view.name = StringFormat("mv_%llu", static_cast<unsigned long long>(
                                          view.Hash() & 0xFFFFFF));
  out->views.push_back(std::move(view));
}

QueryCandidates CandidateGenerator::ForQuery(const Query& query) const {
  QueryCandidates out;
  for (const TableAccess& a : query.select.accesses) {
    AddAccessCandidates(query.select, a, &out);
  }
  if (query.kind == StatementKind::kSelect) {
    AddViewCandidate(query.select, &out);
  }
  return out;
}

QueryCandidates CandidateGenerator::ForWorkload(const Workload& workload) const {
  QueryCandidates out;
  std::unordered_set<uint64_t> seen_idx;
  std::unordered_set<uint64_t> seen_view;
  for (TemplateId t = 0; t < workload.num_templates(); ++t) {
    const std::vector<QueryId>& members = workload.QueriesOfTemplate(t);
    if (members.empty()) continue;
    QueryCandidates qc = ForQuery(workload.query(members.front()));
    for (Index& i : qc.indexes) {
      if (seen_idx.insert(i.Hash()).second) out.indexes.push_back(std::move(i));
    }
    for (MaterializedView& v : qc.views) {
      if (seen_view.insert(v.Hash()).second) out.views.push_back(std::move(v));
    }
  }
  return out;
}

Configuration CandidateGenerator::RichConfiguration(
    const Workload& workload) const {
  QueryCandidates all = ForWorkload(workload);
  Configuration rich("rich");
  for (Index& i : all.indexes) rich.AddIndex(std::move(i));
  for (MaterializedView& v : all.views) rich.AddView(std::move(v));
  return rich;
}

}  // namespace pdx
