#include "optimizer/physical_design.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/string_util.h"

namespace pdx {

namespace {
constexpr uint32_t kIndexEntryOverhead = 12;
constexpr uint32_t kViewRowOverhead = 16;

uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
}

uint64_t HashColumnRef(const ColumnRef& r) {
  return (static_cast<uint64_t>(r.table) << 32) | r.column;
}
}  // namespace

uint32_t Index::EntryBytes(const Schema& schema) const {
  const Table& t = schema.table(table);
  uint32_t bytes = kIndexEntryOverhead;
  for (ColumnId c : key_columns) bytes += t.columns[c].width_bytes;
  for (ColumnId c : include_columns) bytes += t.columns[c].width_bytes;
  return bytes;
}

uint64_t Index::LeafPages(const Schema& schema) const {
  const Table& t = schema.table(table);
  uint64_t per_page = Schema::kPageSizeBytes / std::max(1u, EntryBytes(schema));
  if (per_page == 0) per_page = 1;
  return (t.row_count + per_page - 1) / per_page;
}

uint32_t Index::Levels(const Schema& schema) const {
  // Internal fan-out: key bytes + child pointer.
  const Table& t = schema.table(table);
  uint32_t key_bytes = kIndexEntryOverhead;
  for (ColumnId c : key_columns) key_bytes += t.columns[c].width_bytes;
  double fanout =
      std::max(2.0, static_cast<double>(Schema::kPageSizeBytes) / key_bytes);
  double leaves = static_cast<double>(LeafPages(schema));
  uint32_t levels = 1;
  while (leaves > 1.0) {
    leaves /= fanout;
    ++levels;
  }
  return levels;
}

uint64_t Index::StorageBytes(const Schema& schema) const {
  // Leaves plus ~1/fanout of internal pages; the latter is negligible, we
  // charge 2% like common sizing formulas.
  uint64_t leaf_bytes = LeafPages(schema) * Schema::kPageSizeBytes;
  return leaf_bytes + leaf_bytes / 50;
}

bool Index::Covers(const std::vector<ColumnId>& columns) const {
  for (ColumnId c : columns) {
    bool found = std::find(key_columns.begin(), key_columns.end(), c) !=
                     key_columns.end() ||
                 std::find(include_columns.begin(), include_columns.end(),
                           c) != include_columns.end();
    if (!found) return false;
  }
  return true;
}

std::string Index::Name(const Schema& schema) const {
  const Table& t = schema.table(table);
  std::string out = "ix_" + t.name + "(";
  for (size_t i = 0; i < key_columns.size(); ++i) {
    if (i > 0) out += ",";
    out += t.columns[key_columns[i]].name;
  }
  out += ")";
  if (!include_columns.empty()) {
    out += "incl(";
    for (size_t i = 0; i < include_columns.size(); ++i) {
      if (i > 0) out += ",";
      out += t.columns[include_columns[i]].name;
    }
    out += ")";
  }
  return out;
}

uint64_t Index::Hash() const {
  uint64_t h = 0xA11CE5 ^ table;
  for (ColumnId c : key_columns) h = HashCombine(h, 0x1000 + c);
  // Includes are order-insensitive.
  uint64_t inc = 0;
  for (ColumnId c : include_columns) inc += 0x9E3779B9ULL * (c + 1);
  return HashCombine(h, inc);
}

uint32_t MaterializedView::RowBytes(const Schema& schema) const {
  uint32_t bytes = kViewRowOverhead;
  for (const ColumnRef& r : exposed_columns) {
    bytes += schema.column(r).width_bytes;
  }
  return bytes;
}

uint64_t MaterializedView::Pages(const Schema& schema) const {
  uint64_t per_page = Schema::kPageSizeBytes / std::max(1u, RowBytes(schema));
  if (per_page == 0) per_page = 1;
  return (row_count + per_page - 1) / per_page;
}

uint64_t MaterializedView::StorageBytes(const Schema& schema) const {
  return Pages(schema) * Schema::kPageSizeBytes;
}

bool MaterializedView::References(TableId t) const {
  return std::binary_search(tables.begin(), tables.end(), t);
}

uint64_t MaterializedView::Hash() const {
  uint64_t h = 0xBEEF;
  for (TableId t : tables) h = HashCombine(h, t);
  for (uint64_t j : join_signature) h = HashCombine(h, j);
  uint64_t g = 0;
  for (const ColumnRef& r : group_by) g += HashColumnRef(r) * 0x9E3779B9ULL;
  uint64_t e = 0;
  for (const ColumnRef& r : exposed_columns) e += HashColumnRef(r) * 0x85EBCA6BULL;
  h = HashCombine(h, g);
  h = HashCombine(h, e);
  return h;
}

std::vector<uint64_t> MakeJoinSignature(
    const std::vector<std::pair<ColumnRef, ColumnRef>>& edges) {
  std::vector<uint64_t> sig;
  sig.reserve(edges.size());
  for (const auto& [a, b] : edges) {
    uint64_t ha = HashColumnRef(a);
    uint64_t hb = HashColumnRef(b);
    if (ha > hb) std::swap(ha, hb);
    sig.push_back(HashCombine(ha, hb));
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

namespace {

// Inserts `pos` into a per-table position list keeping it ordered by the
// structures' identity hashes (position as tie-break): iteration order is
// then a function of the structure *set*, not of insertion history.
template <typename Structure>
void InsertCanonical(const std::vector<Structure>& structures,
                     std::vector<uint32_t>* list, uint32_t pos) {
  uint64_t h = structures[pos].Hash();
  auto it = std::upper_bound(
      list->begin(), list->end(), pos, [&](uint32_t a, uint32_t b) {
        uint64_t ha = a == pos ? h : structures[a].Hash();
        uint64_t hb = b == pos ? h : structures[b].Hash();
        return ha != hb ? ha < hb : a < b;
      });
  list->insert(it, pos);
}

const std::vector<uint32_t> kNoStructures;

}  // namespace

bool Configuration::AddIndex(Index index) {
  if (ContainsIndex(index)) return false;
  indexes_.push_back(std::move(index));
  uint32_t pos = static_cast<uint32_t>(indexes_.size() - 1);
  InsertCanonical(indexes_, &indexes_by_table_[indexes_.back().table], pos);
  return true;
}

bool Configuration::AddView(MaterializedView view) {
  if (ContainsView(view)) return false;
  views_.push_back(std::move(view));
  uint32_t pos = static_cast<uint32_t>(views_.size() - 1);
  TableId prev = kInvalidTableId;
  for (TableId t : views_.back().tables) {  // sorted; skip self-join dups
    if (t == prev) continue;
    prev = t;
    InsertCanonical(views_, &views_by_table_[t], pos);
  }
  return true;
}

const std::vector<uint32_t>& Configuration::IndexesOnTable(
    TableId table) const {
  auto it = indexes_by_table_.find(table);
  return it == indexes_by_table_.end() ? kNoStructures : it->second;
}

const std::vector<uint32_t>& Configuration::ViewsOnTable(TableId table) const {
  auto it = views_by_table_.find(table);
  return it == views_by_table_.end() ? kNoStructures : it->second;
}

bool Configuration::ContainsIndex(const Index& index) const {
  return std::find(indexes_.begin(), indexes_.end(), index) != indexes_.end();
}

bool Configuration::ContainsView(const MaterializedView& view) const {
  return std::find(views_.begin(), views_.end(), view) != views_.end();
}

uint64_t Configuration::StorageBytes(const Schema& schema) const {
  uint64_t bytes = 0;
  for (const Index& i : indexes_) bytes += i.StorageBytes(schema);
  for (const MaterializedView& v : views_) bytes += v.StorageBytes(schema);
  return bytes;
}

Configuration Configuration::Merge(const Configuration& other) const {
  Configuration merged(name_ + "+" + other.name_);
  for (const Index& i : indexes_) merged.AddIndex(i);
  for (const MaterializedView& v : views_) merged.AddView(v);
  for (const Index& i : other.indexes_) merged.AddIndex(i);
  for (const MaterializedView& v : other.views_) merged.AddView(v);
  return merged;
}

double Configuration::StructureOverlap(const Configuration& other) const {
  std::unordered_set<uint64_t> mine;
  for (const Index& i : indexes_) mine.insert(i.Hash());
  for (const MaterializedView& v : views_) mine.insert(v.Hash());
  std::unordered_set<uint64_t> theirs;
  for (const Index& i : other.indexes_) theirs.insert(i.Hash());
  for (const MaterializedView& v : other.views_) theirs.insert(v.Hash());
  if (mine.empty() && theirs.empty()) return 1.0;
  size_t common = 0;
  for (uint64_t h : mine) common += theirs.count(h);
  size_t uni = mine.size() + theirs.size() - common;
  return uni == 0 ? 1.0 : static_cast<double>(common) / static_cast<double>(uni);
}

uint64_t Configuration::Hash() const {
  uint64_t h = 0;
  // Order-insensitive: sum of structure hashes.
  for (const Index& i : indexes_) h += i.Hash();
  for (const MaterializedView& v : views_) h += v.Hash();
  return h;
}

}  // namespace pdx
