// Copyright (c) the pdexplore authors.
// Physical design structures: indexes, materialized views, and
// configurations (the candidate points of the design space the comparison
// primitive selects among).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/schema.h"
#include "catalog/types.h"

namespace pdx {

/// A B-tree index: ordered key columns plus non-key included columns.
struct Index {
  TableId table = kInvalidTableId;
  /// Key columns in order; the leading prefix determines seek ability.
  std::vector<ColumnId> key_columns;
  /// Non-key columns stored in the leaves (covering payload).
  std::vector<ColumnId> include_columns;

  /// Stable identity for set operations and overlap metrics.
  bool operator==(const Index& o) const {
    return table == o.table && key_columns == o.key_columns &&
           include_columns == o.include_columns;
  }

  /// Bytes per leaf entry (keys + includes + entry overhead).
  uint32_t EntryBytes(const Schema& schema) const;
  /// Total leaf pages.
  uint64_t LeafPages(const Schema& schema) const;
  /// B-tree height (levels above the leaf level), >= 1.
  uint32_t Levels(const Schema& schema) const;
  /// Storage footprint in bytes.
  uint64_t StorageBytes(const Schema& schema) const;
  /// True if every column in `columns` appears in keys or includes.
  bool Covers(const std::vector<ColumnId>& columns) const;
  /// Canonical name, e.g. "ix_lineitem(l_shipdate)incl(...)".
  std::string Name(const Schema& schema) const;
  /// Order-insensitive 64-bit identity hash.
  uint64_t Hash() const;
};

/// A materialized join/aggregation view. Matching is structural: a query
/// can use the view when it joins exactly the view's tables via the view's
/// join signature, its grouping is a subset of the view's grouping, and all
/// columns it touches are exposed.
struct MaterializedView {
  std::string name;
  /// Tables joined by the view, sorted ascending.
  std::vector<TableId> tables;
  /// Canonical join signature: for each edge, the two column refs in
  /// sorted order; edges sorted. Built by MakeJoinSignature.
  std::vector<uint64_t> join_signature;
  /// Grouping columns of the view (empty = no pre-aggregation).
  std::vector<ColumnRef> group_by;
  /// Columns exposed by the view (available to predicates / output).
  std::vector<ColumnRef> exposed_columns;
  /// Materialized row count (estimated at creation time).
  uint64_t row_count = 0;

  bool operator==(const MaterializedView& o) const {
    return tables == o.tables && join_signature == o.join_signature &&
           group_by == o.group_by && exposed_columns == o.exposed_columns;
  }

  /// Bytes per materialized row.
  uint32_t RowBytes(const Schema& schema) const;
  /// Heap pages of the materialization.
  uint64_t Pages(const Schema& schema) const;
  uint64_t StorageBytes(const Schema& schema) const;
  /// True if `t` participates in the view (DML on t must maintain it).
  bool References(TableId t) const;
  /// Order-insensitive identity hash.
  uint64_t Hash() const;
};

/// Canonical signature of a join edge set (order-insensitive).
std::vector<uint64_t> MakeJoinSignature(
    const std::vector<std::pair<ColumnRef, ColumnRef>>& edges);

/// A candidate physical configuration: a set of indexes and views.
class Configuration {
 public:
  Configuration() = default;
  explicit Configuration(std::string name) : name_(std::move(name)) {}

  /// Adds an index if not already present; returns true if added.
  bool AddIndex(Index index);
  /// Adds a view if not already present; returns true if added.
  bool AddView(MaterializedView view);

  const std::vector<Index>& indexes() const { return indexes_; }
  const std::vector<MaterializedView>& views() const { return views_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Indexes on a given table (indices into indexes()). The lists are
  /// maintained incrementally by AddIndex/AddView — no per-call
  /// allocation on the optimizer's hot path — and are ordered by
  /// structure identity hash (position as tie-break), so per-table
  /// iteration order (and hence floating-point accumulation in
  /// maintenance costing) is independent of the order structures were
  /// added. The signature what-if cache's bit-identity guarantee relies
  /// on this canonical order.
  const std::vector<uint32_t>& IndexesOnTable(TableId table) const;
  /// Views referencing a given table (same ordering guarantees).
  const std::vector<uint32_t>& ViewsOnTable(TableId table) const;

  bool ContainsIndex(const Index& index) const;
  bool ContainsView(const MaterializedView& view) const;

  /// Total storage footprint.
  uint64_t StorageBytes(const Schema& schema) const;

  /// Union of this and `other`.
  Configuration Merge(const Configuration& other) const;

  /// Jaccard overlap of structure sets — used by benches to engineer the
  /// "shared structures" vs "little overlap" scenarios of Figures 1/3/4.
  double StructureOverlap(const Configuration& other) const;

  size_t NumStructures() const { return indexes_.size() + views_.size(); }

  /// Order-insensitive identity hash over all structures.
  uint64_t Hash() const;

 private:
  std::string name_;
  std::vector<Index> indexes_;
  std::vector<MaterializedView> views_;
  /// table -> positions into indexes_/views_, canonically ordered (see
  /// IndexesOnTable).
  std::unordered_map<TableId, std::vector<uint32_t>> indexes_by_table_;
  std::unordered_map<TableId, std::vector<uint32_t>> views_by_table_;
};

}  // namespace pdx
