#include "optimizer/what_if.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/string_util.h"
#include "common/thread_pool.h"

namespace pdx {

namespace {

// Returns the selectivity and key-prefix depth an index seek can apply:
// equality predicates on a leading prefix of the key, optionally followed
// by one range predicate on the next key column. Returns prefix length 0
// when the leading key column has no sargable predicate.
struct SeekMatch {
  uint32_t prefix_len = 0;
  double selectivity = 1.0;
  /// Fraction of the leaf level touched (selectivity of the seek columns).
  double leaf_fraction = 1.0;
  bool ends_with_range = false;
};

SeekMatch MatchSeekPrefix(const Index& index, const TableAccess& access) {
  SeekMatch m;
  for (ColumnId key : index.key_columns) {
    const Predicate* eq = nullptr;
    const Predicate* range = nullptr;
    for (const Predicate& p : access.predicates) {
      if (!p.sargable || p.column.column != key) continue;
      if (p.op == PredOp::kEq || p.op == PredOp::kIn) {
        eq = &p;
      } else if (p.op == PredOp::kRange) {
        range = &p;
      }
    }
    if (eq != nullptr) {
      m.prefix_len += 1;
      m.selectivity *= eq->selectivity;
      m.leaf_fraction *= eq->selectivity;
      continue;  // can keep extending the prefix
    }
    if (range != nullptr) {
      m.prefix_len += 1;
      m.selectivity *= range->selectivity;
      m.leaf_fraction *= range->selectivity;
      m.ends_with_range = true;
    }
    break;  // range (or no predicate) terminates the usable prefix
  }
  return m;
}

}  // namespace

WhatIfOptimizer::AccessPlan WhatIfOptimizer::BestAccessPath(
    const TableAccess& access, const Configuration& config,
    const std::vector<ColumnRef>& group_by) const {
  const Table& table = model_.schema().table(access.table);
  const double table_rows = static_cast<double>(table.row_count);
  const double combined_sel = access.CombinedSelectivity();
  const double output_rows = table_rows * combined_sel;

  AccessPlan best;
  best.cost = model_.HeapScanCost(access.table);
  best.output_rows = output_rows;
  best.ordered_cost = -1.0;
  best.description = "heap_scan(" + table.name + ")";

  for (uint32_t idx : config.IndexesOnTable(access.table)) {
    const Index& index = config.indexes()[idx];
    const bool covering = index.Covers(access.referenced_columns);
    SeekMatch match = MatchSeekPrefix(index, access);

    double cost;
    const char* kind;
    if (match.prefix_len > 0) {
      double matching_rows = table_rows * match.selectivity;
      if (match.ends_with_range || match.prefix_len < index.key_columns.size()) {
        cost = model_.IndexRangeScanCost(index, match.leaf_fraction,
                                         matching_rows, covering);
        kind = "index_range";
      } else {
        cost = model_.IndexSeekCost(index, matching_rows, covering);
        kind = "index_seek";
      }
    } else if (covering) {
      // No sargable prefix, but the index is narrower than the heap:
      // covering leaf-level scan.
      cost = model_.ScanPagesCost(
          static_cast<double>(index.LeafPages(model_.schema())), table_rows);
      kind = "index_scan";
    } else {
      continue;
    }

    if (cost < best.cost) {
      best.cost = cost;
      best.description =
          std::string(kind) + "(" + index.Name(model_.schema()) + ")";
    }
    // Order property: the index delivers rows sorted by its key columns;
    // usable when the group-by columns (all on this table) form a prefix
    // of the key sequence and the path is a scan (not an equality seek
    // past the grouping prefix).
    if (!group_by.empty() && group_by.size() <= index.key_columns.size()) {
      bool all_match = true;
      for (size_t g = 0; g < group_by.size(); ++g) {
        if (group_by[g].table != access.table ||
            group_by[g].column != index.key_columns[g]) {
          all_match = false;
          break;
        }
      }
      if (all_match && (best.ordered_cost < 0.0 || cost < best.ordered_cost)) {
        best.ordered_cost = cost;
      }
    }
  }
  best.output_rows = output_rows;
  return best;
}

double WhatIfOptimizer::IndexNestedLoopProbeCost(
    const TableAccess& inner, ColumnId inner_join_column,
    const Configuration& config) const {
  const Table& table = model_.schema().table(inner.table);
  const double table_rows = static_cast<double>(table.row_count);
  double best = -1.0;
  for (uint32_t idx : config.IndexesOnTable(inner.table)) {
    const Index& index = config.indexes()[idx];
    if (index.key_columns.empty() ||
        index.key_columns[0] != inner_join_column) {
      continue;
    }
    const bool covering = index.Covers(inner.referenced_columns);
    double ndv = model_.ColumnNdv({inner.table, inner_join_column});
    double rows_per_probe = std::max(1.0, table_rows / ndv);
    double cost = model_.IndexSeekCost(index, rows_per_probe, covering);
    if (best < 0.0 || cost < best) best = cost;
  }
  return best;
}

double WhatIfOptimizer::ViewMatchCost(const SelectSpec& spec,
                                      const Configuration& config) const {
  if (spec.joins.empty() || config.views().empty()) return -1.0;

  // Canonical shape of the query's join graph.
  std::vector<TableId> query_tables;
  for (const TableAccess& a : spec.accesses) query_tables.push_back(a.table);
  std::sort(query_tables.begin(), query_tables.end());
  std::vector<std::pair<ColumnRef, ColumnRef>> edges;
  for (const JoinEdge& j : spec.joins) {
    edges.push_back({{spec.accesses[j.left_access].table, j.left_column},
                     {spec.accesses[j.right_access].table, j.right_column}});
  }
  std::vector<uint64_t> signature = MakeJoinSignature(edges);

  double best = -1.0;
  for (const MaterializedView& view : config.views()) {
    if (view.tables != query_tables) continue;
    if (view.join_signature != signature) continue;

    // Grouping must be a subset of the view's grouping (each query group
    // column must be exposed at view granularity).
    bool groups_ok = true;
    for (const ColumnRef& g : spec.group_by) {
      if (std::find(view.group_by.begin(), view.group_by.end(), g) ==
          view.group_by.end()) {
        groups_ok = false;
        break;
      }
    }
    if (!groups_ok) continue;

    // Every column the query touches must be exposed.
    bool columns_ok = true;
    for (const TableAccess& a : spec.accesses) {
      for (ColumnId c : a.referenced_columns) {
        ColumnRef ref{a.table, c};
        if (std::find(view.exposed_columns.begin(), view.exposed_columns.end(),
                      ref) == view.exposed_columns.end()) {
          columns_ok = false;
          break;
        }
      }
      if (!columns_ok) break;
    }
    if (!columns_ok) continue;

    // Scan the materialization, apply residual predicates, re-aggregate.
    double view_rows = static_cast<double>(view.row_count);
    double sel = 1.0;
    for (const TableAccess& a : spec.accesses) sel *= a.CombinedSelectivity();
    double rows_after = view_rows * sel;
    double cost = model_.ScanPagesCost(
        static_cast<double>(view.Pages(model_.schema())), view_rows);
    if (!spec.group_by.empty()) {
      double groups = model_.GroupCardinality(rows_after, spec.group_by);
      cost += model_.HashAggregateCost(rows_after, groups);
      rows_after = groups;
    }
    if (!spec.order_by.empty()) cost += model_.SortCost(rows_after);
    cost += model_.constants().cpu_operator * rows_after *
            static_cast<double>(spec.num_aggregates);
    if (best < 0.0 || cost < best) best = cost;
  }
  return best;
}

double WhatIfOptimizer::SelectCost(const SelectSpec& spec,
                                   const Configuration& config,
                                   PlanExplanation* explanation) const {
  if (spec.accesses.empty()) return 0.0;

  // Join-free single access.
  double join_cost = 0.0;
  double current_rows = 0.0;
  // Cost of an alternative single-table plan that delivers group order
  // (aggregation becomes free); negative when unavailable.
  double ordered_plan_cost = -1.0;

  if (spec.joins.empty()) {
    AccessPlan plan = BestAccessPath(spec.accesses[0], config, spec.group_by);
    join_cost = plan.cost;
    current_rows = plan.output_rows;
    ordered_plan_cost = plan.ordered_cost;
    if (explanation != nullptr) {
      explanation->access_paths.push_back(plan.description);
    }
  } else {
    // Left-deep composition in edge order (generators emit connected
    // orderings starting from the most selective side).
    std::unordered_set<uint32_t> joined;
    uint32_t first = spec.joins[0].left_access;
    AccessPlan first_plan =
        BestAccessPath(spec.accesses[first], config, spec.group_by);
    join_cost = first_plan.cost;
    current_rows = first_plan.output_rows;
    joined.insert(first);
    if (explanation != nullptr) {
      explanation->access_paths.push_back(first_plan.description);
    }

    for (const JoinEdge& edge : spec.joins) {
      bool left_in = joined.count(edge.left_access) > 0;
      bool right_in = joined.count(edge.right_access) > 0;
      if (left_in && right_in) {
        // Redundant edge within the joined set: a residual filter.
        double ndv = std::max(
            model_.ColumnNdv(
                {spec.accesses[edge.left_access].table, edge.left_column}),
            model_.ColumnNdv(
                {spec.accesses[edge.right_access].table, edge.right_column}));
        current_rows = std::max(1.0, current_rows / std::max(1.0, ndv));
        continue;
      }
      PDX_CHECK_MSG(left_in || right_in,
                    "join edge disconnected from joined prefix");
      uint32_t inner_id = left_in ? edge.right_access : edge.left_access;
      ColumnId inner_col = left_in ? edge.right_column : edge.left_column;
      ColumnId outer_col = left_in ? edge.left_column : edge.right_column;
      uint32_t outer_id = left_in ? edge.left_access : edge.right_access;
      const TableAccess& inner = spec.accesses[inner_id];

      AccessPlan inner_plan = BestAccessPath(inner, config, {});
      double inner_rows = inner_plan.output_rows;

      // Hash join: materialize the inner via its best path, probe with the
      // current outer stream (build on the smaller input).
      double build_rows = std::min(inner_rows, current_rows);
      double probe_rows = std::max(inner_rows, current_rows);
      double hash_cost =
          inner_plan.cost + model_.HashJoinCost(build_rows, probe_rows);

      // Index nested loop: one seek per outer row.
      double join_op_cost = hash_cost;
      std::string inner_desc = inner_plan.description + "+hash";
      double probe_cost = IndexNestedLoopProbeCost(inner, inner_col, config);
      if (probe_cost >= 0.0) {
        double residual_cpu = model_.constants().cpu_operator *
                              static_cast<double>(inner.predicates.size());
        double inlj_cost = current_rows * (probe_cost + residual_cpu);
        if (inlj_cost < join_op_cost) {
          join_op_cost = inlj_cost;
          inner_desc = "inlj(" +
                       model_.schema().table(inner.table).name + "." +
                       model_.schema()
                           .table(inner.table)
                           .columns[inner_col]
                           .name +
                       ")";
        }
      }
      join_cost += join_op_cost;
      current_rows = model_.JoinCardinality(
          current_rows, inner_rows,
          {spec.accesses[outer_id].table, outer_col},
          {inner.table, inner_col});
      joined.insert(inner_id);
      if (explanation != nullptr) {
        explanation->access_paths.push_back(inner_desc);
      }
    }
  }

  // Grouping / aggregation. An order-providing single-table plan is an
  // alternative whose aggregation is free (streaming aggregate); choose
  // the jointly cheaper option so adding indexes can never hurt.
  double rows_out = current_rows;
  if (!spec.group_by.empty()) {
    double groups = model_.GroupCardinality(current_rows, spec.group_by);
    double agg = std::min(model_.SortCost(current_rows),
                          model_.HashAggregateCost(current_rows, groups));
    double unordered_total = join_cost + agg;
    join_cost = (ordered_plan_cost >= 0.0)
                    ? std::min(unordered_total, ordered_plan_cost)
                    : unordered_total;
    rows_out = groups;
  }
  if (!spec.order_by.empty()) {
    join_cost += model_.SortCost(rows_out);
  }
  join_cost += model_.constants().cpu_operator * rows_out *
               static_cast<double>(spec.num_aggregates);

  // A matching materialized view may beat the join plan.
  double view_cost = ViewMatchCost(spec, config);
  if (view_cost >= 0.0 && view_cost < join_cost) {
    if (explanation != nullptr) {
      explanation->used_view = true;
      explanation->access_paths.push_back("view_scan");
    }
    return view_cost;
  }
  return join_cost;
}

double WhatIfOptimizer::UpdatePartCost(const Query& query,
                                       const Configuration& config) const {
  const UpdateSpec& u = *query.update;
  const Table& table = model_.schema().table(u.table);
  const double affected =
      std::max(1.0, static_cast<double>(table.row_count) * u.selectivity);
  const CostConstants& k = model_.constants();

  // Base-table modification: grows with selectivity (§6.1, observation 2).
  double heap_pages = static_cast<double>(table.HeapPages());
  double cost = k.cpu_tuple * affected +
                k.random_page * std::min(affected, heap_pages);

  // Index maintenance. UPDATE touches an index only when a written column
  // appears in it; INSERT/DELETE touch all indexes on the table.
  for (uint32_t idx : config.IndexesOnTable(u.table)) {
    const Index& index = config.indexes()[idx];
    bool touched = u.kind != StatementKind::kUpdate;
    if (!touched) {
      for (ColumnId c : u.set_columns) {
        if (index.Covers({c})) {
          touched = true;
          break;
        }
      }
    }
    if (!touched) continue;
    double leaf_pages = static_cast<double>(index.LeafPages(model_.schema()));
    cost += k.maintenance_tuple * affected +
            k.random_page * std::min(affected, leaf_pages);
  }

  // View maintenance: join views are more expensive to maintain (delta
  // must be joined against the other base tables).
  for (uint32_t v : config.ViewsOnTable(u.table)) {
    const MaterializedView& view = config.views()[v];
    double width_factor = static_cast<double>(view.tables.size());
    double view_pages = static_cast<double>(view.Pages(model_.schema()));
    cost += k.maintenance_tuple * affected * width_factor +
            k.seq_page * std::min(affected, view_pages);
  }
  return cost;
}

double WhatIfOptimizer::CostExplained(const Query& query,
                                      const Configuration& config,
                                      PlanExplanation* explanation) const {
  calls_.fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(&weighted_calls_, query.optimize_overhead);

  double select_cost = 0.0;
  if (!query.select.accesses.empty()) {
    select_cost = SelectCost(query.select, config, explanation);
  }
  double update_cost = 0.0;
  if (query.update.has_value()) {
    update_cost = UpdatePartCost(query, config);
  }
  double total = select_cost + update_cost;
  if (explanation != nullptr) {
    explanation->select_cost = select_cost;
    explanation->update_cost = update_cost;
    explanation->total_cost = total;
  }
  return total;
}

double WhatIfOptimizer::Cost(const Query& query,
                             const Configuration& config) const {
  return CostExplained(query, config, nullptr);
}

double WhatIfOptimizer::TotalCost(const Workload& workload,
                                  const Configuration& config) const {
  double total = 0.0;
  for (const Query& q : workload.queries()) total += Cost(q, config);
  return total;
}

}  // namespace pdx
