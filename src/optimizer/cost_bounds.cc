#include "optimizer/cost_bounds.h"

#include <algorithm>

namespace pdx {

CostBoundsDeriver::CostBoundsDeriver(const WhatIfOptimizer& optimizer,
                                     const Workload& workload,
                                     Configuration base, Configuration rich)
    : optimizer_(optimizer),
      workload_(workload),
      base_(std::move(base)),
      rich_(std::move(rich)) {
  template_extremes_.resize(workload.num_templates());
  for (TemplateId t = 0; t < workload.num_templates(); ++t) {
    TemplateExtremes& ex = template_extremes_[t];
    double min_sel = 2.0;
    double max_sel = -1.0;
    for (QueryId qid : workload.QueriesOfTemplate(t)) {
      const Query& q = workload.query(qid);
      if (!q.update.has_value()) continue;
      ex.has_dml = true;
      if (q.update->selectivity < min_sel) {
        min_sel = q.update->selectivity;
        ex.min_sel_query = qid;
      }
      if (q.update->selectivity > max_sel) {
        max_sel = q.update->selectivity;
        ex.max_sel_query = qid;
      }
    }
  }
}

CostInterval CostBoundsDeriver::SelectBounds(const Query& query) const {
  // The SELECT part alone (explanation splits DML into its two halves).
  PlanExplanation base_plan, rich_plan;
  optimizer_.CostExplained(query, base_, &base_plan);
  optimizer_.CostExplained(query, rich_, &rich_plan);
  // The validating constructor normalizes model round-off inversions; the
  // monotonicity property itself is asserted by tests.
  return CostInterval(rich_plan.select_cost, base_plan.select_cost);
}

CostInterval CostBoundsDeriver::UpdateBounds(TemplateId t,
                                             const Configuration& config) const {
  const TemplateExtremes& ex = template_extremes_[t];
  if (!ex.has_dml) return CostInterval(0.0, 0.0);
  PlanExplanation lo_plan, hi_plan;
  optimizer_.CostExplained(workload_.query(ex.min_sel_query), config,
                           &lo_plan);
  optimizer_.CostExplained(workload_.query(ex.max_sel_query), config,
                           &hi_plan);
  return CostInterval(lo_plan.update_cost, hi_plan.update_cost);
}

std::vector<CostInterval> CostBoundsDeriver::WorkloadBounds(
    const Configuration& config) const {
  // Per-template update-part bounds in `config`: 2 calls per DML template.
  std::vector<CostInterval> update_bounds(workload_.num_templates());
  for (TemplateId t = 0; t < workload_.num_templates(); ++t) {
    update_bounds[t] = UpdateBounds(t, config);
  }

  std::vector<CostInterval> out(workload_.size());
  for (QueryId qid = 0; qid < workload_.size(); ++qid) {
    const Query& q = workload_.query(qid);
    CostInterval iv{0.0, 0.0};
    if (!q.select.accesses.empty()) {
      iv = SelectBounds(q);
    }
    if (q.update.has_value()) {
      const CostInterval& ub = update_bounds[q.template_id];
      iv.low += ub.low;
      iv.high += ub.high;
    }
    out[qid] = iv;
  }
  return out;
}

std::vector<CostInterval> CostBoundsDeriver::DeltaBounds(
    const Configuration& c1, const Configuration& c2) const {
  std::vector<CostInterval> b1 = WorkloadBounds(c1);
  std::vector<CostInterval> b2 = WorkloadBounds(c2);
  std::vector<CostInterval> out(b1.size());
  for (size_t i = 0; i < b1.size(); ++i) {
    out[i] = CostInterval(b1[i].low - b2[i].high, b1[i].high - b2[i].low);
  }
  return out;
}

}  // namespace pdx
