#include "tuner/greedy_tuner.h"

#include <algorithm>
#include <memory>

#include "common/obs.h"
#include "common/span.h"

namespace pdx {

namespace {

struct TunerMetrics {
  obs::Counter* rounds;
  obs::Counter* structures_added;
  obs::Histogram* round_ns;
};

TunerMetrics& TMetrics() {
  static TunerMetrics m = [] {
    obs::Registry& r = obs::Registry::Global();
    return TunerMetrics{r.GetCounter("pdx_tuner_rounds_total"),
                        r.GetCounter("pdx_tuner_structures_added_total"),
                        r.GetHistogram("pdx_tuner_round_ns")};
  }();
  return m;
}

// CostSource over a workload subset and a per-round configuration set.
class SubsetCostSource : public CostSource {
 public:
  SubsetCostSource(const WhatIfOptimizer& optimizer, const Workload& workload,
                   const std::vector<QueryId>& ids,
                   const std::vector<Configuration>& configs)
      : optimizer_(optimizer),
        workload_(workload),
        ids_(ids),
        configs_(configs) {}

  double Cost(QueryId q, ConfigId c) override {
    PDX_CHECK(q < ids_.size());
    PDX_CHECK(c < configs_.size());
    calls_ += 1;
    return optimizer_.Cost(workload_.query(ids_[q]), configs_[c]);
  }
  size_t num_queries() const override { return ids_.size(); }
  size_t num_configs() const override { return configs_.size(); }
  TemplateId TemplateOf(QueryId q) const override {
    return workload_.query(ids_[q]).template_id;
  }
  size_t num_templates() const override { return workload_.num_templates(); }
  double OptimizeOverhead(QueryId q) const override {
    return workload_.query(ids_[q]).optimize_overhead;
  }
  uint64_t num_calls() const override { return calls_; }
  void ResetCallCounter() override { calls_ = 0; }

 private:
  const WhatIfOptimizer& optimizer_;
  const Workload& workload_;
  const std::vector<QueryId>& ids_;
  const std::vector<Configuration>& configs_;
  uint64_t calls_ = 0;
};

}  // namespace

double WeightedCost(const WhatIfOptimizer& optimizer, const Workload& workload,
                    const std::vector<QueryId>& query_ids,
                    const std::vector<double>& weights,
                    const Configuration& config) {
  PDX_CHECK(weights.empty() || weights.size() == query_ids.size());
  double total = 0.0;
  for (size_t i = 0; i < query_ids.size(); ++i) {
    double w = weights.empty() ? 1.0 : weights[i];
    total += w * optimizer.Cost(workload.query(query_ids[i]), config);
  }
  return total;
}

TuneResult GreedyTune(const WhatIfOptimizer& optimizer,
                      const Workload& workload,
                      const std::vector<QueryId>& query_ids,
                      const std::vector<double>& weights,
                      const TunerOptions& options, Rng* rng) {
  PDX_CHECK(rng != nullptr);
  PDX_CHECK(!query_ids.empty());
  const Schema& schema = workload.schema();
  const uint64_t budget = options.storage_budget_bytes > 0
                              ? options.storage_budget_bytes
                              : schema.TotalHeapBytes() * 2 / 5;
  const uint64_t calls_before = optimizer.num_calls();

  TuneResult result;
  result.config = options.base_config;
  result.config.set_name("tuned");
  result.initial_cost =
      WeightedCost(optimizer, workload, query_ids, weights, result.config);

  // Candidate pool: per-query candidates of the subset, deduplicated and
  // pre-scored by standalone benefit on the subset (beam pruning).
  CandidateGenerator gen(schema, options.candidates);
  std::vector<ScoredStructure> pool;
  {
    std::unordered_map<uint64_t, size_t> seen;
    for (QueryId qid : query_ids) {
      QueryCandidates qc = gen.ForQuery(workload.query(qid));
      for (Index& idx : qc.indexes) {
        uint64_t h = idx.Hash();
        if (seen.emplace(h, pool.size()).second) {
          ScoredStructure s;
          s.is_view = false;
          s.index = std::move(idx);
          s.storage_bytes = s.index.StorageBytes(schema);
          pool.push_back(std::move(s));
        }
      }
      for (MaterializedView& v : qc.views) {
        uint64_t h = v.Hash();
        if (seen.emplace(h, pool.size()).second) {
          ScoredStructure s;
          s.is_view = true;
          s.view = std::move(v);
          s.storage_bytes = s.view.StorageBytes(schema);
          pool.push_back(std::move(s));
        }
      }
    }
  }
  // Scoring set: the full tuning set, or a uniform subsample of it.
  std::vector<QueryId> scoring_ids = query_ids;
  std::vector<double> scoring_weights = weights;
  if (options.scoring_sample_size > 0 &&
      options.scoring_sample_size < query_ids.size()) {
    std::vector<uint32_t> picks = rng->SampleWithoutReplacement(
        query_ids.size(), options.scoring_sample_size);
    scoring_ids.clear();
    scoring_weights.clear();
    for (uint32_t i : picks) {
      scoring_ids.push_back(query_ids[i]);
      if (!weights.empty()) scoring_weights.push_back(weights[i]);
    }
  }
  double scoring_base_cost;
  if (options.cache == WhatIfCacheMode::kSignature) {
    // One signature source over [base, base+s_0, base+s_1, ...]: the
    // scoring configurations differ from the base by a single structure,
    // so for every query that structure can't influence, the base's
    // optimizer call is reused. Sums run in the same per-query order as
    // WeightedCost, so the benefits are bit-identical to the direct path.
    std::vector<Configuration> scoring_configs;
    scoring_configs.reserve(pool.size() + 1);
    scoring_configs.push_back(options.base_config);
    for (const ScoredStructure& s : pool) {
      Configuration single = options.base_config;
      if (s.is_view) {
        single.AddView(s.view);
      } else {
        single.AddIndex(s.index);
      }
      scoring_configs.push_back(std::move(single));
    }
    SignatureCachingCostSource scorer(optimizer, workload,
                                      std::move(scoring_configs), scoring_ids);
    std::vector<QueryId> batch_qids(scoring_ids.size());
    for (size_t i = 0; i < batch_qids.size(); ++i) {
      batch_qids[i] = static_cast<QueryId>(i);
    }
    std::vector<double> batch_costs(scoring_ids.size(), 0.0);
    auto weighted = [&](ConfigId c) {
      // One batched sweep per candidate; the weighted sum runs in the same
      // per-query order as the scalar loop, so totals are bit-identical.
      scorer.CostMany(batch_qids, c, batch_costs);
      double total = 0.0;
      for (size_t i = 0; i < batch_costs.size(); ++i) {
        double w = scoring_weights.empty() ? 1.0 : scoring_weights[i];
        total += w * batch_costs[i];
      }
      return total;
    };
    scoring_base_cost = weighted(0);
    for (size_t s = 0; s < pool.size(); ++s) {
      pool[s].benefit =
          scoring_base_cost - weighted(static_cast<ConfigId>(s + 1));
    }
  } else {
    scoring_base_cost = WeightedCost(optimizer, workload, scoring_ids,
                                     scoring_weights, result.config);
    for (ScoredStructure& s : pool) {
      // Standalone benefit on top of the deployed base configuration.
      Configuration single = options.base_config;
      if (s.is_view) {
        single.AddView(s.view);
      } else {
        single.AddIndex(s.index);
      }
      s.benefit = scoring_base_cost - WeightedCost(optimizer, workload,
                                                   scoring_ids,
                                                   scoring_weights, single);
    }
  }
  std::sort(pool.begin(), pool.end(),
            [](const ScoredStructure& a, const ScoredStructure& b) {
              return a.benefit > b.benefit;
            });
  if (pool.size() > options.beam_width) pool.resize(options.beam_width);

  // §6.1 interval source for fault degradation AND for dynamic budget
  // refinement: one deriver per tune. base must be contained in every
  // compared configuration and rich must contain every structure any of
  // them may use; the greedy rounds only ever add pool structures on top
  // of base, so base/base+pool brackets all of them.
  std::unique_ptr<CostBoundsDeriver> bounds_deriver;
  const bool dynamic_budget =
      options.selector.budget_policy == BudgetPolicy::kDynamic;
  if (options.use_comparison_primitive &&
      (options.faults.enabled() || dynamic_budget)) {
    Configuration rich = options.base_config;
    for (const ScoredStructure& s : pool) {
      if (s.is_view) {
        rich.AddView(s.view);
      } else {
        rich.AddIndex(s.index);
      }
    }
    bounds_deriver = std::make_unique<CostBoundsDeriver>(
        optimizer, workload, options.base_config, std::move(rich));
  }

  double current_cost = result.initial_cost;
  std::vector<bool> used(pool.size(), false);
  uint64_t used_bytes = 0;

  for (uint32_t round = 0; round < options.max_structures; ++round) {
    TMetrics().rounds->Add();
    obs::ScopedTimer round_timer(TMetrics().round_ns);
    obs::SpanScope round_span("round", "tuner");
    // Collect feasible extensions.
    std::vector<size_t> feasible;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (!used[i] && used_bytes + pool[i].storage_bytes <= budget) {
        feasible.push_back(i);
      }
    }
    if (feasible.empty()) break;

    auto extend = [&](size_t i) {
      Configuration ext = result.config;
      if (pool[i].is_view) {
        ext.AddView(pool[i].view);
      } else {
        ext.AddIndex(pool[i].index);
      }
      return ext;
    };

    int64_t winner = -1;
    double winner_cost = current_cost;
    if (options.use_comparison_primitive) {
      PDX_CHECK_MSG(weights.empty(),
                    "comparison-primitive tuning requires unit weights");
      // Configs: current (index 0) plus each extension; the primitive
      // picks the best with probabilistic guarantees.
      std::vector<Configuration> round_configs;
      round_configs.push_back(result.config);
      for (size_t i : feasible) round_configs.push_back(extend(i));
      // The round's extensions differ from the current configuration by
      // one structure each: signature caching collapses the per-round
      // what-if matrix down to the queries each structure can touch.
      // Costs are bit-identical across tiers, so the selection (driven by
      // the shared rng) is too — only the call count changes.
      std::unique_ptr<SubsetCostSource> subset;
      std::unique_ptr<CachingCostSource> exact;
      std::unique_ptr<SignatureCachingCostSource> sig;
      CostSource* source = nullptr;
      if (options.cache == WhatIfCacheMode::kSignature) {
        sig = std::make_unique<SignatureCachingCostSource>(
            optimizer, workload, round_configs, query_ids);
        source = sig.get();
      } else {
        subset = std::make_unique<SubsetCostSource>(optimizer, workload,
                                                    query_ids, round_configs);
        if (options.cache == WhatIfCacheMode::kExact) {
          exact = std::make_unique<CachingCostSource>(subset.get());
          source = exact.get();
        } else {
          source = subset.get();
        }
      }
      std::unique_ptr<FaultInjectingCostSource> injector;
      std::unique_ptr<WorkloadBoundsCache> bounds_cache;
      SelectorOptions sel_opts = options.selector;
      if (options.faults.enabled()) {
        // Mix the round index into the seed so each round's schedule is an
        // independent draw while the whole tune stays reproducible.
        FaultSpec spec = options.faults;
        spec.seed ^= 0x9E3779B97F4A7C15ULL * (round + 1);
        injector = std::make_unique<FaultInjectingCostSource>(source, spec);
        injector->set_deadline_ms(sel_opts.exec.retry.deadline_ms);
        source = injector.get();
        sel_opts.exec.enabled = true;
        sel_opts.exec.seed ^= spec.seed;
      }
      if (bounds_deriver != nullptr) {
        // Shared by fault degradation and budget refinement; the lazy
        // sharded cache fills each piece at most once per round.
        bounds_cache = std::make_unique<WorkloadBoundsCache>(
            bounds_deriver.get(), &round_configs, query_ids);
        sel_opts.bounds = bounds_cache.get();
      }
      ConfigurationSelector selector(source, sel_opts);
      SelectionResult sel = selector.Run(rng);
      result.whatif_retries += sel.whatif_retries;
      result.whatif_timeouts += sel.whatif_timeouts;
      result.whatif_failures += sel.whatif_failures;
      result.degraded_cells += sel.degraded_cells;
      result.bound_refinement_calls += sel.bound_refinement_calls;
      result.dominance_eliminations += sel.dominance_eliminations;
      result.refined_queries += sel.refined_queries;
      if (sel.best == 0) break;  // keeping the current configuration wins
      winner = static_cast<int64_t>(feasible[sel.best - 1]);
      winner_cost = WeightedCost(optimizer, workload, query_ids, weights,
                                 round_configs[sel.best]);
    } else {
      for (size_t i : feasible) {
        double c =
            WeightedCost(optimizer, workload, query_ids, weights, extend(i));
        if (c < winner_cost) {
          winner_cost = c;
          winner = static_cast<int64_t>(i);
        }
      }
    }

    if (winner < 0 || winner_cost >= current_cost) break;
    size_t w = static_cast<size_t>(winner);
    if (pool[w].is_view) {
      result.config.AddView(pool[w].view);
    } else {
      result.config.AddIndex(pool[w].index);
    }
    used[w] = true;
    used_bytes += pool[w].storage_bytes;
    current_cost = winner_cost;
    TMetrics().structures_added->Add();
  }

  result.final_cost = current_cost;
  result.optimizer_calls = optimizer.num_calls() - calls_before;
  return result;
}

}  // namespace pdx
