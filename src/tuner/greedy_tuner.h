// Copyright (c) the pdexplore authors.
// A small greedy physical-design tuner. Used by the §7.3 experiments to
// measure end-to-end tuning quality when the input workload is compressed
// ([5]/[20]) versus sampled (this paper), and as a demonstration of the
// comparison primitive as "the core comparison primitive inside an
// automated physical design tool".
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/selector.h"
#include "tuner/enumerator.h"

namespace pdx {

/// Options for the greedy tuner.
struct TunerOptions {
  /// Storage budget; 0 = 40% of the database heap size.
  uint64_t storage_budget_bytes = 0;
  /// Maximum structures added.
  uint32_t max_structures = 12;
  /// Candidates kept after the initial scoring round (greedy beam).
  uint32_t beam_width = 24;
  /// Queries used for the initial per-structure benefit scoring; 0 scores
  /// on the full tuning set (exact but |candidates| * |WL| optimizer
  /// calls).
  uint32_t scoring_sample_size = 0;
  /// Structures already deployed: tuning starts from this configuration,
  /// candidates are added on top, and improvement is measured against it.
  Configuration base_config;
  /// When true, each greedy round selects the winning extension with the
  /// sampling-based comparison primitive instead of exact evaluation.
  bool use_comparison_primitive = false;
  /// What-if memoization tier for the scoring phase and (in primitive
  /// mode) the per-round selections. kSignature shares one optimizer call
  /// across every candidate configuration that agrees on a query's
  /// relevant structures — the candidates of one greedy round differ by a
  /// single structure, so nearly all of them do. Results are bit-identical
  /// across tiers; only the call count changes.
  WhatIfCacheMode cache = WhatIfCacheMode::kOff;
  /// Selector settings for the primitive-driven mode.
  SelectorOptions selector;
  CandidateGenOptions candidates;
  /// Fault injection over the primitive-driven per-round selections
  /// (core/fault.h). When enabled(), each round's what-if source is
  /// wrapped in a seeded FaultInjectingCostSource (the round index is
  /// mixed into the seed so rounds draw independent schedules) and the
  /// selector runs under selector.exec's retry policy with §6 bound
  /// degradation; a once-per-tune CostBoundsDeriver over base + the
  /// pruned candidate pool supplies the intervals. Ignored when
  /// use_comparison_primitive is false (exact evaluation has no what-if
  /// loop to perturb).
  FaultSpec faults;
};

/// Tuning outcome.
struct TuneResult {
  Configuration config;
  /// Cost of the (weighted) tuning workload before/after, exact.
  double initial_cost = 0.0;
  double final_cost = 0.0;
  /// Optimizer calls spent tuning.
  uint64_t optimizer_calls = 0;
  /// Execution-layer totals summed over the per-round selections (all 0
  /// unless options.faults was enabled).
  uint64_t whatif_retries = 0;
  uint64_t whatif_timeouts = 0;
  uint64_t whatif_failures = 0;
  uint64_t degraded_cells = 0;
  /// Budget-reallocation totals summed over the per-round selections
  /// (all 0 unless options.selector.budget_policy is kDynamic). The
  /// refinement calls are already part of optimizer_calls: the bounds
  /// deriver prices them through the same optimizer meter.
  uint64_t bound_refinement_calls = 0;
  uint64_t dominance_eliminations = 0;
  uint64_t refined_queries = 0;

  double Improvement() const {
    return initial_cost > 0.0 ? 1.0 - final_cost / initial_cost : 0.0;
  }
};

/// Greedily tunes the (sub-)workload given by `query_ids` with per-query
/// `weights` (e.g. cluster sizes from compression; pass empty for unit
/// weights). Queries refer to `workload` ids.
TuneResult GreedyTune(const WhatIfOptimizer& optimizer,
                      const Workload& workload,
                      const std::vector<QueryId>& query_ids,
                      const std::vector<double>& weights,
                      const TunerOptions& options, Rng* rng);

/// Exact weighted cost of a query set under a configuration (one optimizer
/// call per query).
double WeightedCost(const WhatIfOptimizer& optimizer, const Workload& workload,
                    const std::vector<QueryId>& query_ids,
                    const std::vector<double>& weights,
                    const Configuration& config);

}  // namespace pdx
