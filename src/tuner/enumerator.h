// Copyright (c) the pdexplore authors.
// Candidate-configuration enumeration. Physical design tools explore a
// space of configurations assembled from per-query candidate structures;
// the comparison primitive then selects among them. This enumerator
// produces realistic candidate sets for the §7.2 experiments: benefit-
// scored structures combined greedily and stochastically under a storage
// budget, so that good configurations share their most valuable
// structures (the cost covariance Delta Sampling exploits).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "optimizer/candidate_gen.h"
#include "optimizer/what_if.h"

namespace pdx {

/// Options for configuration enumeration.
struct EnumeratorOptions {
  /// Number of configurations to produce.
  uint32_t num_configs = 50;
  /// Storage budget per configuration; 0 = 40% of the database heap size.
  uint64_t storage_budget_bytes = 0;
  /// Queries sampled to score structure benefits.
  uint32_t eval_sample_size = 150;
  /// Probability scale of including high-benefit structures in the
  /// randomized configurations (higher = more overlap with the greedy
  /// configuration).
  double greediness = 0.7;
  CandidateGenOptions candidates;
};

/// A scored candidate structure (index or view).
struct ScoredStructure {
  /// Either an index or a view (exactly one is meaningful).
  bool is_view = false;
  Index index;
  MaterializedView view;
  double benefit = 0.0;
  uint64_t storage_bytes = 0;
};

/// Scores all workload candidates by their standalone benefit on an
/// evaluation sample, descending.
std::vector<ScoredStructure> ScoreCandidates(const WhatIfOptimizer& optimizer,
                                             const Workload& workload,
                                             const EnumeratorOptions& options,
                                             Rng* rng);

/// Enumerates `options.num_configs` distinct configurations. The first is
/// the pure greedy benefit-per-byte fill; the rest are randomized
/// benefit-biased subsets. All respect the storage budget.
std::vector<Configuration> EnumerateConfigurations(
    const WhatIfOptimizer& optimizer, const Workload& workload,
    const EnumeratorOptions& options, Rng* rng);

/// Enumerates variants of `base` by randomly dropping `drop` structures
/// and substituting up to `add` structures from the scored pool. Produces
/// the clouds of near-optimal, heavily-overlapping configurations the
/// §7.2 selection problems are made of. The base configuration itself is
/// not included.
std::vector<Configuration> EnumerateNeighborhood(
    const Configuration& base, const std::vector<ScoredStructure>& pool,
    uint32_t num_configs, uint32_t drop, uint32_t add, Rng* rng);

/// Searches `configs` for the pair whose relative total-cost gap
/// |cost_a - cost_b| / max(...) is closest to `target_gap`, optionally
/// constraining structure overlap (Jaccard): pass min_overlap > 0 to
/// demand shared structures, max_overlap < 1 to demand disjoint ones.
/// `totals[c]` are exact workload totals. Returns indices into `configs`,
/// cheaper configuration first.
std::pair<ConfigId, ConfigId> FindConfigPair(
    const std::vector<Configuration>& configs,
    const std::vector<double>& totals, double target_gap, double min_overlap,
    double max_overlap);

}  // namespace pdx
