#include "tuner/enumerator.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/string_util.h"

namespace pdx {

namespace {

uint64_t DefaultBudget(const Schema& schema) {
  return schema.TotalHeapBytes() * 2 / 5;
}

}  // namespace

std::vector<ScoredStructure> ScoreCandidates(const WhatIfOptimizer& optimizer,
                                             const Workload& workload,
                                             const EnumeratorOptions& options,
                                             Rng* rng) {
  PDX_CHECK(rng != nullptr);
  CandidateGenerator gen(workload.schema(), options.candidates);
  QueryCandidates pool = gen.ForWorkload(workload);

  // Evaluation sample.
  size_t sample_size =
      std::min<size_t>(options.eval_sample_size, workload.size());
  std::vector<uint32_t> sample =
      rng->SampleWithoutReplacement(workload.size(), sample_size);

  Configuration empty("empty");
  std::vector<double> base_costs(sample.size());
  for (size_t i = 0; i < sample.size(); ++i) {
    base_costs[i] = optimizer.Cost(workload.query(sample[i]), empty);
  }

  auto benefit_of = [&](const Configuration& single) {
    double benefit = 0.0;
    for (size_t i = 0; i < sample.size(); ++i) {
      benefit += base_costs[i] - optimizer.Cost(workload.query(sample[i]), single);
    }
    return benefit;
  };

  std::vector<ScoredStructure> scored;
  scored.reserve(pool.indexes.size() + pool.views.size());
  for (const Index& idx : pool.indexes) {
    Configuration single("probe");
    single.AddIndex(idx);
    ScoredStructure s;
    s.is_view = false;
    s.index = idx;
    s.benefit = benefit_of(single);
    s.storage_bytes = idx.StorageBytes(workload.schema());
    scored.push_back(std::move(s));
  }
  for (const MaterializedView& view : pool.views) {
    Configuration single("probe");
    single.AddView(view);
    ScoredStructure s;
    s.is_view = true;
    s.view = view;
    s.benefit = benefit_of(single);
    s.storage_bytes = view.StorageBytes(workload.schema());
    scored.push_back(std::move(s));
  }
  std::sort(scored.begin(), scored.end(),
            [](const ScoredStructure& a, const ScoredStructure& b) {
              return a.benefit > b.benefit;
            });
  return scored;
}

std::vector<Configuration> EnumerateConfigurations(
    const WhatIfOptimizer& optimizer, const Workload& workload,
    const EnumeratorOptions& options, Rng* rng) {
  PDX_CHECK(rng != nullptr);
  PDX_CHECK(options.num_configs >= 1);
  const Schema& schema = workload.schema();
  const uint64_t budget = options.storage_budget_bytes > 0
                              ? options.storage_budget_bytes
                              : DefaultBudget(schema);

  std::vector<ScoredStructure> scored =
      ScoreCandidates(optimizer, workload, options, rng);

  auto build = [&](const std::vector<const ScoredStructure*>& parts,
                   std::string name) {
    Configuration config(std::move(name));
    uint64_t used = 0;
    for (const ScoredStructure* s : parts) {
      if (used + s->storage_bytes > budget) continue;
      bool added = s->is_view ? config.AddView(s->view)
                              : config.AddIndex(s->index);
      if (added) used += s->storage_bytes;
    }
    return config;
  };

  std::vector<Configuration> configs;
  std::unordered_set<uint64_t> seen;

  // Greedy benefit-per-byte fill.
  {
    std::vector<const ScoredStructure*> by_density;
    for (const ScoredStructure& s : scored) {
      if (s.benefit > 0.0) by_density.push_back(&s);
    }
    std::sort(by_density.begin(), by_density.end(),
              [](const ScoredStructure* a, const ScoredStructure* b) {
                double da = a->benefit / static_cast<double>(
                                             std::max<uint64_t>(1, a->storage_bytes));
                double db = b->benefit / static_cast<double>(
                                             std::max<uint64_t>(1, b->storage_bytes));
                return da > db;
              });
    Configuration greedy = build(by_density, "greedy");
    seen.insert(greedy.Hash());
    configs.push_back(std::move(greedy));
  }

  // Randomized benefit-biased variants. Inclusion probability decays with
  // benefit rank, so top structures recur across configurations.
  uint32_t attempts = 0;
  while (configs.size() < options.num_configs &&
         attempts < options.num_configs * 30) {
    ++attempts;
    std::vector<const ScoredStructure*> parts;
    for (size_t r = 0; r < scored.size(); ++r) {
      if (scored[r].benefit <= 0.0) continue;
      double p = options.greediness /
                 (1.0 + 0.15 * static_cast<double>(parts.size())) /
                 (1.0 + 0.08 * static_cast<double>(r));
      if (rng->NextDouble() < p) parts.push_back(&scored[r]);
    }
    if (parts.empty()) continue;
    Configuration config =
        build(parts, StringFormat("cand_%u", attempts));
    if (config.NumStructures() == 0) continue;
    if (seen.insert(config.Hash()).second) {
      configs.push_back(std::move(config));
    }
  }

  // Pad with single-structure configurations if uniqueness ran dry.
  for (size_t r = 0; configs.size() < options.num_configs && r < scored.size();
       ++r) {
    std::vector<const ScoredStructure*> parts = {&scored[r]};
    Configuration config = build(parts, StringFormat("single_%zu", r));
    if (config.NumStructures() > 0 && seen.insert(config.Hash()).second) {
      configs.push_back(std::move(config));
    }
  }
  PDX_CHECK_MSG(configs.size() >= 1, "no configurations enumerated");
  return configs;
}

std::vector<Configuration> EnumerateNeighborhood(
    const Configuration& base, const std::vector<ScoredStructure>& pool,
    uint32_t num_configs, uint32_t drop, uint32_t add, Rng* rng) {
  PDX_CHECK(rng != nullptr);
  std::vector<Configuration> out;
  std::unordered_set<uint64_t> seen;
  seen.insert(base.Hash());

  uint32_t attempts = 0;
  while (out.size() < num_configs && attempts < num_configs * 40) {
    ++attempts;
    // Drop `drop` random structures from the base.
    size_t n_idx = base.indexes().size();
    size_t n_view = base.views().size();
    size_t n_total = n_idx + n_view;
    if (n_total == 0) break;
    std::vector<uint32_t> dropped = rng->SampleWithoutReplacement(
        n_total, std::min<size_t>(drop, n_total));
    std::unordered_set<uint32_t> drop_set(dropped.begin(), dropped.end());

    Configuration variant(StringFormat("nbr_%u", attempts));
    for (size_t i = 0; i < n_idx; ++i) {
      if (drop_set.count(static_cast<uint32_t>(i)) == 0) {
        variant.AddIndex(base.indexes()[i]);
      }
    }
    for (size_t v = 0; v < n_view; ++v) {
      if (drop_set.count(static_cast<uint32_t>(n_idx + v)) == 0) {
        variant.AddView(base.views()[v]);
      }
    }
    // Substitute up to `add` pool structures not already present.
    uint32_t added = 0;
    for (uint32_t tries = 0; added < add && tries < add * 10 && !pool.empty();
         ++tries) {
      const ScoredStructure& s = pool[rng->NextBounded(pool.size())];
      bool ok = s.is_view ? variant.AddView(s.view) : variant.AddIndex(s.index);
      if (ok) ++added;
    }
    if (variant.NumStructures() == 0) continue;
    if (seen.insert(variant.Hash()).second) {
      out.push_back(std::move(variant));
    }
  }
  return out;
}

std::pair<ConfigId, ConfigId> FindConfigPair(
    const std::vector<Configuration>& configs,
    const std::vector<double>& totals, double target_gap, double min_overlap,
    double max_overlap) {
  PDX_CHECK(configs.size() == totals.size());
  PDX_CHECK(configs.size() >= 2);
  double best_score = std::numeric_limits<double>::infinity();
  std::pair<ConfigId, ConfigId> best{0, 1};
  bool found = false;
  for (ConfigId a = 0; a < configs.size(); ++a) {
    for (ConfigId b = a + 1; b < configs.size(); ++b) {
      double hi = std::max(totals[a], totals[b]);
      if (hi <= 0.0) continue;
      double gap = std::abs(totals[a] - totals[b]) / hi;
      double overlap = configs[a].StructureOverlap(configs[b]);
      if (overlap < min_overlap || overlap > max_overlap) continue;
      double score = std::abs(gap - target_gap);
      if (score < best_score) {
        best_score = score;
        best = totals[a] <= totals[b] ? std::make_pair(a, b)
                                      : std::make_pair(b, a);
        found = true;
      }
    }
  }
  // Fall back to ignoring the overlap constraint rather than aborting.
  if (!found) {
    for (ConfigId a = 0; a < configs.size(); ++a) {
      for (ConfigId b = a + 1; b < configs.size(); ++b) {
        double hi = std::max(totals[a], totals[b]);
        if (hi <= 0.0) continue;
        double gap = std::abs(totals[a] - totals[b]) / hi;
        double score = std::abs(gap - target_gap);
        if (score < best_score) {
          best_score = score;
          best = totals[a] <= totals[b] ? std::make_pair(a, b)
                                        : std::make_pair(b, a);
        }
      }
    }
  }
  return best;
}

}  // namespace pdx
