#include "service/server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <numeric>
#include <optional>
#include <thread>
#include <vector>

#include "common/metrics_server.h"
#include "common/obs.h"
#include "common/run_ledger.h"
#include "common/string_util.h"
#include "core/fault.h"
#include "core/selector.h"
#include "tuner/greedy_tuner.h"

namespace pdx::service {

namespace {

using obs::ReadOutcome;

Status SocketError(const char* what) {
  return Status::IOError(StringFormat("%s: %s", what, std::strerror(errno)));
}

/// Incremental '\n'-framed reader over one connection, built on the
/// deadline-bounded ReadUntilDelimiter the metrics exporter uses. Bytes
/// past a line stay buffered for the next call.
class LineReader {
 public:
  LineReader(int fd, size_t max_bytes, int deadline_ms)
      : fd_(fd), max_bytes_(max_bytes), deadline_ms_(deadline_ms) {}

  /// kComplete: *line holds the next line (without '\n'). kEof: clean
  /// end of session. A final unterminated line is delivered as
  /// kComplete once, then kEof (so `printf '{...}' | nc` works).
  ReadOutcome Next(std::string* line) {
    while (true) {
      size_t nl = buf_.find('\n', pos_);
      if (nl != std::string::npos) {
        line->assign(buf_, pos_, nl - pos_);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        pos_ = nl + 1;
        return ReadOutcome::kComplete;
      }
      if (eof_) {
        if (pos_ < buf_.size()) {
          line->assign(buf_, pos_, buf_.size() - pos_);
          pos_ = buf_.size();
          return ReadOutcome::kComplete;
        }
        return ReadOutcome::kEof;
      }
      buf_.erase(0, pos_);
      pos_ = 0;
      if (buf_.size() >= max_bytes_) return ReadOutcome::kTooLarge;
      ReadOutcome out = obs::ReadUntilDelimiter(
          fd_, "\n", max_bytes_ - buf_.size(), deadline_ms_, &buf_);
      if (out == ReadOutcome::kEof) {
        eof_ = true;
        continue;  // deliver any final unterminated line
      }
      if (out != ReadOutcome::kComplete) return out;
    }
  }

  /// Unconsumed buffered bytes (the tail of an HTTP head read).
  std::string Remaining() const { return buf_.substr(pos_); }

 private:
  int fd_;
  size_t max_bytes_;
  int deadline_ms_;
  std::string buf_;
  size_t pos_ = 0;
  bool eof_ = false;
};

bool LooksLikeHttp(const std::string& line) {
  return line.rfind("GET ", 0) == 0 || line.rfind("HEAD ", 0) == 0 ||
         line.rfind("POST ", 0) == 0 || line.rfind("PUT ", 0) == 0;
}

uint64_t NowUnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// One session = one connection: answer protocol lines (or one HTTP
/// scrape) until EOF, deadline, oversize, or socket error.
void HandleConnection(int conn, SelectionService* service,
                      const ServeOptions& options) {
  obs::Registry& reg = obs::Registry::Global();
  reg.GetCounter("pdx_serve_sessions_total")->Add();
  obs::Gauge* active = reg.GetGauge("pdx_serve_active_sessions");
  active->Add(1);
  service->note_session_started();
  LineReader reader(conn, options.max_request_bytes,
                    options.read_deadline_ms);
  std::string line;
  bool first = true;
  while (true) {
    ReadOutcome out = reader.Next(&line);
    if (out == ReadOutcome::kEof) break;
    if (out == ReadOutcome::kDeadline) {
      reg.GetCounter("pdx_serve_deadline_drops_total")->Add();
      obs::SendAll(conn,
                   "{\"ok\":false,\"error\":\"read deadline exceeded\"}\n");
      break;
    }
    if (out == ReadOutcome::kTooLarge) {
      reg.GetCounter("pdx_serve_errors_total")->Add();
      obs::SendAll(conn,
                   "{\"ok\":false,\"error\":\"request exceeds size bound\"}\n");
      break;
    }
    if (out != ReadOutcome::kComplete) break;  // socket error
    if (first && LooksLikeHttp(line)) {
      // A scrape on the service port: the exporter's response, one
      // request per connection. The head past the request line is
      // irrelevant to dispatch and may still be in flight; don't wait
      // for it.
      reg.GetCounter("pdx_serve_http_requests_total")->Add();
      obs::SendAll(conn, obs::MetricsHttpResponse(line + "\r\n"));
      break;
    }
    first = false;
    if (line.empty()) continue;
    const std::string resp = service->ExecuteRequestLine(line);
    if (!obs::SendAll(conn, resp)) break;
    if (service->shutdown_requested()) break;
  }
  ::shutdown(conn, SHUT_WR);
  ::close(conn);
  active->Add(-1);
}

}  // namespace

SelectionService::SelectionService(const ServeOptions& options)
    : options_(options),
      registry_(WarmStateRegistry::Options{options.max_catalogs,
                                           options.max_resident_bytes}) {
  if (!options_.ledger_dir.empty()) git_ = GitDescribe();
}

void SelectionService::WriteSessionManifest(const char* tool,
                                            const std::string& line,
                                            uint64_t seed, double wall_ms) {
  if (options_.ledger_dir.empty()) return;
  // Built by hand rather than via BuildRunManifest: the git revision is
  // resolved once at startup (no popen per session), and the span
  // rollup is left empty — spans are process-global and concurrent
  // sessions would steal each other's drains (DESIGN.md §12).
  RunManifest m;
  m.tool = tool;
  m.flags = line;
  m.seed = seed;
  m.wall_ms = wall_ms;
  m.git = git_;
  m.started_unix_ms = NowUnixMs();
  m.counters = obs::Registry::Global().Samples();
  auto written = WriteManifest(m, options_.ledger_dir);
  if (!written.ok()) {
    obs::Registry::Global().GetCounter("pdx_serve_ledger_errors_total")->Add();
  }
}

std::string SelectionService::ExecuteCompare(const ServiceRequest& req) {
  auto catalog = registry_.Acquire(req.dir, req.workload);
  if (!catalog.ok()) return ErrorResponse(req, catalog.status().ToString());
  WarmCatalog& cat = **catalog;
  SelectorOptions sopt;
  sopt.alpha = req.alpha;
  sopt.scheme = req.scheme == "indep" ? SamplingScheme::kIndependent
                                      : SamplingScheme::kDelta;
  if (req.budget == "dynamic") {
    sopt.budget_policy = BudgetPolicy::kDynamic;
    sopt.bounds = cat.bounds.get();
  }
  // Per-session fault injection above the shared memo: the injector is
  // this session's private view of the catalog source, so concurrent
  // fault-free sessions never observe its failures, and the warm cache
  // only ever absorbs calls that survived injection. The policy fields a
  // request omits keep the RetryPolicy defaults (protocol.h) — "faults"
  // alone runs under the batch CLI's exact policy.
  CostSource* source = cat.source.get();
  std::optional<FaultInjectingCostSource> injector;
  if (!req.faults.empty()) {
    auto spec = ParseFaultSpec(req.faults);
    if (!spec.ok()) return ErrorResponse(req, spec.status().ToString());
    injector.emplace(cat.source.get(), *spec);
    injector->set_deadline_ms(req.deadline_ms);
    source = &*injector;
    sopt.exec.enabled = true;
    sopt.exec.retry.max_attempts = static_cast<uint32_t>(req.retry_attempts);
    sopt.exec.retry.deadline_ms = req.deadline_ms;
    sopt.exec.seed = spec->seed;
    sopt.bounds = cat.bounds.get();  // degrade-to-bounds fallback
  }
  const uint64_t calls_before = cat.source->num_calls();
  const uint64_t t0 = obs::NowNs();
  ConfigurationSelector selector(source, sopt);
  Rng rng(req.seed);
  SelectionResult r = selector.Run(&rng);
  const double wall_ms = static_cast<double>(obs::NowNs() - t0) / 1e6;
  // Under the shared source this delta includes concurrent sessions'
  // calls — economics only, never part of the fingerprint.
  const uint64_t calls_delta = cat.source->num_calls() - calls_before;
  obs::Registry::Global()
      .GetHistogram("pdx_serve_session_latency")
      ->Record(obs::NowNs() - t0);
  WriteSessionManifest(
      "serve-compare",
      StringFormat("compare dir=%s seed=%llu workload=%s faults=%s",
                   req.dir.c_str(),
                   static_cast<unsigned long long>(req.seed),
                   req.workload.empty() ? "-" : req.workload.c_str(),
                   req.faults.empty() ? "-" : req.faults.c_str()),
      req.seed, wall_ms);
  return CompareResponse(req, r, wall_ms, calls_delta);
}

std::string SelectionService::ExecuteTune(const ServiceRequest& req) {
  auto catalog = registry_.Acquire(req.dir, req.workload);
  if (!catalog.ok()) return ErrorResponse(req, catalog.status().ToString());
  WarmCatalog& cat = **catalog;
  std::vector<QueryId> ids(cat.workload->size());
  std::iota(ids.begin(), ids.end(), 0);
  TunerOptions topt;
  topt.use_comparison_primitive = true;
  // Signature caching: bit-identical to every other tier (the batch
  // CLI's default is exact cells), maximal cross-candidate sharing.
  topt.cache = WhatIfCacheMode::kSignature;
  topt.max_structures = static_cast<uint32_t>(req.max_structures);
  topt.storage_budget_bytes = req.budget_mb * 1000000;
  topt.selector.alpha = req.alpha;
  if (req.budget == "dynamic") {
    topt.selector.budget_policy = BudgetPolicy::kDynamic;
  }
  Rng rng(req.seed);
  const uint64_t t0 = obs::NowNs();
  TuneResult r =
      GreedyTune(*cat.optimizer, *cat.workload, ids, {}, topt, &rng);
  const double wall_ms = static_cast<double>(obs::NowNs() - t0) / 1e6;
  obs::Registry::Global()
      .GetHistogram("pdx_serve_session_latency")
      ->Record(obs::NowNs() - t0);
  WriteSessionManifest("serve-tune",
                       StringFormat("tune dir=%s seed=%llu", req.dir.c_str(),
                                    static_cast<unsigned long long>(req.seed)),
                       req.seed, wall_ms);
  return TuneResponse(req, r, wall_ms);
}

std::string SelectionService::ExecuteStats(const ServiceRequest& req) {
  auto catalog = registry_.Acquire(req.dir, req.workload);
  if (!catalog.ok()) return ErrorResponse(req, catalog.status().ToString());
  WarmCatalog& cat = **catalog;
  SharedCacheStats s;
  s.cold_calls = cat.source->num_cold_calls();
  s.signature_hits = cat.source->num_signature_hits();
  s.exact_hits = cat.source->num_exact_hits();
  s.distinct_signatures = cat.source->num_distinct_signatures();
  s.bound_derivation_calls = cat.bounds->derivation_calls();
  s.catalog_loads = registry_.loads();
  s.catalog_hits = registry_.hits();
  s.catalog_evictions = registry_.evictions();
  s.sessions = sessions_.load(std::memory_order_relaxed);
  return StatsResponse(req, s);
}

std::string SelectionService::ExecuteRequestLine(const std::string& line) {
  obs::Registry& reg = obs::Registry::Global();
  reg.GetCounter("pdx_serve_requests_total")->Add();
  auto parsed = ParseRequestLine(line);
  if (!parsed.ok()) {
    reg.GetCounter("pdx_serve_errors_total")->Add();
    ServiceRequest empty;
    return ErrorResponse(empty, parsed.status().ToString());
  }
  const ServiceRequest& req = *parsed;
  std::string resp;
  if (req.op == "ping") {
    resp = OkPingResponse(req);
  } else if (req.op == "shutdown") {
    request_shutdown();
    resp = ShutdownResponse(req);
  } else if (req.op == "stats") {
    resp = ExecuteStats(req);
  } else if (req.op == "compare") {
    resp = ExecuteCompare(req);
  } else {
    resp = ExecuteTune(req);
  }
  if (resp.rfind("{\"ok\":false", 0) == 0) {
    reg.GetCounter("pdx_serve_errors_total")->Add();
  }
  // Registry economics as gauges, refreshed per request so a /metrics
  // scrape sees current admission state without a stats session.
  reg.GetGauge("pdx_serve_catalogs_resident")
      ->Set(static_cast<int64_t>(registry_.size()));
  reg.GetGauge("pdx_serve_catalog_loads")
      ->Set(static_cast<int64_t>(registry_.loads()));
  reg.GetGauge("pdx_serve_catalog_evictions")
      ->Set(static_cast<int64_t>(registry_.evictions()));
  return resp;
}

Status ServeSelection(const ServeOptions& options, int* bound_port,
                      std::shared_ptr<SelectionService>* service_out) {
  auto service = std::make_shared<SelectionService>(options);
  if (service_out != nullptr) *service_out = service;
  // Latency histograms (what-if and session) need the timing clock.
  obs::SetTimingEnabled(true);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SocketError("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = SocketError("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    Status st = SocketError("listen");
    ::close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    Status st = SocketError("getsockname");
    ::close(fd);
    return st;
  }
  const int port = ntohs(addr.sin_port);
  if (bound_port != nullptr) *bound_port = port;
  std::printf("serving selections on 127.0.0.1:%d (%zu workers)\n", port,
              options.num_workers);
  std::fflush(stdout);

  // Bounded handoff queue: accept backpressures instead of queueing
  // unboundedly when every worker is busy.
  std::mutex qmu;
  std::condition_variable qcv;
  std::deque<int> queue;
  bool closed = false;
  const size_t queue_cap = options.num_workers * 4 + 4;

  const size_t num_workers = options.num_workers > 0 ? options.num_workers : 1;
  std::vector<std::thread> workers;
  workers.reserve(num_workers);
  for (size_t w = 0; w < num_workers; ++w) {
    workers.emplace_back([&] {
      while (true) {
        int conn;
        {
          std::unique_lock<std::mutex> lock(qmu);
          qcv.wait(lock, [&] { return closed || !queue.empty(); });
          // Graceful drain: even after close, finish everything queued.
          if (queue.empty()) return;
          conn = queue.front();
          queue.pop_front();
        }
        qcv.notify_all();
        HandleConnection(conn, service.get(), options);
      }
    });
  }

  uint64_t accepted = 0;
  Status status = Status::OK();
  while (!service->shutdown_requested() &&
         (options.max_sessions == 0 || accepted < options.max_sessions)) {
    pollfd pfd{fd, POLLIN, 0};
    int pr = ::poll(&pfd, 1, 100);  // wake regularly to observe shutdown
    if (pr < 0) {
      if (errno == EINTR) continue;
      status = SocketError("poll");
      break;
    }
    if (pr == 0) continue;
    int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      status = SocketError("accept");
      break;
    }
    ++accepted;
    {
      std::unique_lock<std::mutex> lock(qmu);
      qcv.wait(lock, [&] { return queue.size() < queue_cap; });
      queue.push_back(conn);
    }
    qcv.notify_one();
  }
  // Stop accepting, drain queued + in-flight sessions, then return.
  ::close(fd);
  {
    std::lock_guard<std::mutex> lock(qmu);
    closed = true;
  }
  qcv.notify_all();
  for (std::thread& t : workers) t.join();
  std::printf("served %llu sessions, drained cleanly\n",
              static_cast<unsigned long long>(accepted));
  std::fflush(stdout);
  return status;
}

}  // namespace pdx::service
