// Copyright (c) the pdexplore authors.
// The selection-as-a-service daemon (`pdx_tool serve`, DESIGN.md §12):
// a long-lived loopback server accepting concurrent selection/tuning
// sessions over the newline-delimited JSON protocol (service/protocol.h)
// and Prometheus scrapes over HTTP on the same port.
//
// Shape: one accept thread + a small pool of session workers fed by a
// bounded queue. A session is one connection: the client sends request
// lines, the worker answers each with one response line, EOF ends the
// session. The first line is sniffed — an HTTP method ("GET ...") gets
// the metrics exporter's response (so `curl :PORT/metrics` works on the
// service port); anything else is protocol JSON. Every connection runs
// under a read deadline and a request-size bound, so a stalled or
// hostile client occupies at most one worker for at most the deadline —
// it can never wedge the daemon (the regression the old serve-metrics
// loop had).
//
// Sessions run per-session Selector/GreedyTuner state machines over the
// process-wide WarmStateRegistry: the shared SignatureCachingCostSource
// and WorkloadBoundsCache make every session after the first start warm.
// Results are byte-identical to the batch CLI at equal seeds (see
// SelectionFingerprint); shutdown ({"op":"shutdown"} or max_sessions)
// stops accepting, drains queued and in-flight sessions, and returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "service/protocol.h"
#include "service/warm_state.h"

namespace pdx::service {

struct ServeOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port.
  int port = 9464;
  /// Exit after this many sessions (connections); 0 serves until a
  /// shutdown request. Tests and the CI smoke use this for deterministic
  /// termination.
  uint64_t max_sessions = 0;
  /// Per-read deadline within a session, ms. 0 waits forever.
  int read_deadline_ms = 5000;
  /// Bound on one request line (and on an HTTP head).
  size_t max_request_bytes = 65536;
  /// Session worker threads. Sessions parallelize across workers; the
  /// numeric inner loops still run on the global ThreadPool.
  size_t num_workers = 4;
  /// WarmStateRegistry admission bound.
  size_t max_catalogs = 4;
  size_t max_resident_bytes = 0;
  /// When non-empty, every compare/tune session appends a run manifest
  /// (tool "serve-compare"/"serve-tune") under this directory.
  std::string ledger_dir;
};

/// The daemon's request dispatcher, socket-free: one request line in,
/// one response line out. Owns the warm-state registry and the session
/// counters; the socket loop and the tests (and bench_serve's in-process
/// mode) share it, exactly like MetricsHttpResponse.
class SelectionService {
 public:
  explicit SelectionService(const ServeOptions& options);

  /// Executes one protocol request. Never throws; malformed input and
  /// failed runs come back as {"ok":false,...} lines.
  std::string ExecuteRequestLine(const std::string& line);

  /// True once a shutdown request was executed.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }
  void request_shutdown() { shutdown_.store(true, std::memory_order_release); }

  WarmStateRegistry& registry() { return registry_; }
  uint64_t sessions_started() const {
    return sessions_.load(std::memory_order_relaxed);
  }
  void note_session_started() {
    sessions_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::string ExecuteCompare(const ServiceRequest& req);
  std::string ExecuteTune(const ServiceRequest& req);
  std::string ExecuteStats(const ServiceRequest& req);
  /// Appends a per-session run manifest when the ledger is enabled.
  void WriteSessionManifest(const char* tool, const std::string& line,
                            uint64_t seed, double wall_ms);

  ServeOptions options_;
  WarmStateRegistry registry_;
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> sessions_{0};
  /// `git describe` output, resolved once at startup: manifests are
  /// written per session and must not fork a subprocess each time.
  std::string git_;
};

/// Runs the daemon: binds 127.0.0.1:<port>, prints
/// "serving selections on 127.0.0.1:PORT", serves until shutdown /
/// max_sessions, drains, and returns. `bound_port` (when non-null)
/// receives the actual port before the first accept. `service` (when
/// non-null) receives the dispatcher for the caller to inspect after
/// the run — tests read the registry economics through it.
Status ServeSelection(const ServeOptions& options, int* bound_port = nullptr,
                      std::shared_ptr<SelectionService>* service = nullptr);

}  // namespace pdx::service
