#include "service/warm_state.h"

#include <chrono>
#include <unordered_set>
#include <utility>

#include "common/string_util.h"
#include "optimizer/serialization.h"
#include "workload/scenario.h"

namespace pdx::service {

namespace {

/// Union of every structure appearing in any configuration — the `rich`
/// bracket for §6 bound derivation (same construction as the batch CLI,
/// so serve and batch derive identical intervals).
Configuration UnionConfiguration(const std::vector<Configuration>& configs) {
  Configuration rich;
  rich.set_name("rich");
  std::unordered_set<uint64_t> seen;
  for (const Configuration& c : configs) {
    for (const Index& idx : c.indexes()) {
      if (seen.insert(idx.Hash()).second) rich.AddIndex(idx);
    }
    for (const MaterializedView& v : c.views()) {
      if (seen.insert(v.Hash()).second) rich.AddView(v);
    }
  }
  return rich;
}

}  // namespace

Result<std::shared_ptr<WarmCatalog>> LoadWarmCatalog(
    const std::string& dir, const std::string& workload_spec) {
  auto catalog = std::make_shared<WarmCatalog>();
  catalog->dir = dir;
  catalog->workload_spec = workload_spec;
  auto schema = LoadSchema(dir + "/schema.pdx");
  if (!schema.ok()) return schema.status();
  catalog->schema = std::move(*schema);
  if (workload_spec.empty()) {
    auto workload = LoadWorkload(dir + "/workload.pdx", catalog->schema);
    if (!workload.ok()) return workload.status();
    catalog->workload = std::make_unique<Workload>(std::move(*workload));
  } else {
    if (catalog->schema.name() != "tpcd") {
      return Status::InvalidArgument(
          "workload scenarios instantiate the TPC-D template bank; schema '" +
          catalog->schema.name() + "' is not tpcd");
    }
    auto scenario = ParseScenarioSpec(workload_spec);
    if (!scenario.ok()) return scenario.status();
    catalog->workload = std::make_unique<Workload>(
        GenerateScenarioWorkload(catalog->schema, *scenario));
  }
  for (size_t c = 0;; ++c) {
    auto loaded = LoadConfiguration(
        StringFormat("%s/config_%zu.pdx", dir.c_str(), c), catalog->schema);
    if (!loaded.ok()) break;
    catalog->configs.push_back(std::move(*loaded));
  }
  if (catalog->configs.empty()) {
    return Status::NotFound("no config_*.pdx files in '" + dir + "'");
  }
  catalog->optimizer = std::make_unique<WhatIfOptimizer>(catalog->schema);
  catalog->source = std::make_unique<SignatureCachingCostSource>(
      *catalog->optimizer, *catalog->workload, catalog->configs);
  catalog->bounds_deriver = std::make_unique<CostBoundsDeriver>(
      *catalog->optimizer, *catalog->workload, Configuration(),
      UnionConfiguration(catalog->configs));
  catalog->bounds = std::make_unique<WorkloadBoundsCache>(
      catalog->bounds_deriver.get(), &catalog->configs);
  // The dense (query x config) cell-seen table plus, worst case, one
  // memo entry per cell dominate the warm footprint; the artifacts
  // themselves are small by comparison.
  const size_t cells =
      catalog->workload->size() * catalog->configs.size();
  catalog->approx_bytes = cells * 48 + catalog->workload->size() * 256;
  return catalog;
}

WarmStateRegistry::WarmStateRegistry(Options options)
    : options_(std::move(options)) {
  if (options_.max_catalogs == 0) options_.max_catalogs = 1;
}

size_t WarmStateRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void WarmStateRegistry::EvictLocked() {
  auto over_bounds = [&] {
    if (entries_.size() > options_.max_catalogs) return true;
    if (options_.max_resident_bytes == 0) return false;
    size_t bytes = 0;
    for (const auto& [dir, e] : entries_) {
      if (e.future.valid() &&
          e.future.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready) {
        const LoadOutcome& out = e.future.get();
        if (out.catalog != nullptr) bytes += out.catalog->approx_bytes;
      }
    }
    return bytes > options_.max_resident_bytes;
  };
  while (over_bounds()) {
    // LRU among evictable entries: load finished and no session holds
    // the catalog (use_count == 1 means the future's copy is the only
    // reference). In-flight loads and in-use catalogs are pinned.
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.future.valid() ||
          it->second.future.wait_for(std::chrono::seconds(0)) !=
              std::future_status::ready) {
        continue;
      }
      const LoadOutcome& out = it->second.future.get();
      if (out.catalog != nullptr && out.catalog.use_count() > 1) continue;
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) break;  // everything pinned: admit over
    entries_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

Result<std::shared_ptr<WarmCatalog>> WarmStateRegistry::Acquire(
    const std::string& dir, const std::string& workload_spec) {
  // \x1f cannot appear in a path or a canonical spec, so the composite
  // key never collides with a plain directory key.
  const std::string key =
      workload_spec.empty() ? dir : dir + "\x1f" + workload_spec;
  std::shared_future<LoadOutcome> future;
  std::promise<LoadOutcome> promise;
  bool loader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.last_used = ++tick_;
      future = it->second.future;
    } else {
      loader = true;
      future = promise.get_future().share();
      entries_[key] = Entry{future, ++tick_};
      EvictLocked();
    }
  }
  if (loader) {
    loads_.fetch_add(1, std::memory_order_relaxed);
    LoadOutcome out;
    auto loaded = LoadWarmCatalog(dir, workload_spec);
    if (loaded.ok()) {
      out.catalog = std::move(*loaded);
    } else {
      out.status = loaded.status();
    }
    promise.set_value(out);
    if (!out.status.ok()) {
      // Don't cache the failure: a later Acquire (after the user fixes
      // the artifacts) must retry the load.
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second.future.valid() &&
          it->second.future.wait_for(std::chrono::seconds(0)) ==
              std::future_status::ready &&
          it->second.future.get().catalog == nullptr) {
        entries_.erase(it);
      }
      return out.status;
    }
    return out.catalog;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  const LoadOutcome& out = future.get();  // blocks while a peer loads
  if (!out.status.ok()) return out.status;
  return out.catalog;
}

}  // namespace pdx::service
