#include "service/protocol.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/macros.h"
#include "common/string_util.h"
#include "core/fault.h"
#include "workload/scenario.h"

namespace pdx::service {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// First-match scalar extraction, the run-ledger contract: `needle`
/// includes quotes and colon so "seed" never matches "seed_base".
const char* FindValue(const std::string& line, const char* needle) {
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return nullptr;
  return line.c_str() + pos + std::strlen(needle);
}

bool GetString(const std::string& line, const char* needle,
               std::string* out) {
  const char* v = FindValue(line, needle);
  if (v == nullptr || *v != '"') return false;
  ++v;
  out->clear();
  for (; *v != '\0'; ++v) {
    if (*v == '"') return true;
    if (*v == '\\' && v[1] != '\0') {
      ++v;
      switch (*v) {
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        default:
          out->push_back(*v);
      }
    } else {
      out->push_back(*v);
    }
  }
  return false;  // unterminated string
}

/// Strict numeric field: present-but-malformed is an error, absent keeps
/// the default (mirrors the CLI's U64Flag/DoubleFlag contract).
Status GetUint(const std::string& line, const char* needle, uint64_t* out) {
  const char* v = FindValue(line, needle);
  if (v == nullptr) return Status::OK();
  errno = 0;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || errno != 0) {
    return Status::InvalidArgument(
        StringFormat("field %s expects an unsigned integer", needle));
  }
  *out = parsed;
  return Status::OK();
}

Status GetDouble(const std::string& line, const char* needle, double* out) {
  const char* v = FindValue(line, needle);
  if (v == nullptr) return Status::OK();
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v || errno != 0) {
    return Status::InvalidArgument(
        StringFormat("field %s expects a number", needle));
  }
  *out = parsed;
  return Status::OK();
}

/// "id":"..." echo prefix of every response.
std::string Head(const ServiceRequest& req, bool ok) {
  std::string out =
      StringFormat("{\"ok\":%s,\"op\":\"%s\"", ok ? "true" : "false",
                   JsonEscape(req.op).c_str());
  if (!req.id.empty()) {
    out += StringFormat(",\"id\":\"%s\"", JsonEscape(req.id).c_str());
  }
  return out;
}

}  // namespace

Result<ServiceRequest> ParseRequestLine(const std::string& line) {
  ServiceRequest req;
  if (!GetString(line, "\"op\":", &req.op) || req.op.empty()) {
    return Status::InvalidArgument("request has no \"op\" field");
  }
  GetString(line, "\"dir\":", &req.dir);
  GetString(line, "\"id\":", &req.id);
  GetString(line, "\"scheme\":", &req.scheme);
  GetString(line, "\"budget\":", &req.budget);
  GetString(line, "\"workload\":", &req.workload);
  GetString(line, "\"faults\":", &req.faults);
  PDX_RETURN_IF_ERROR(GetUint(line, "\"seed\":", &req.seed));
  PDX_RETURN_IF_ERROR(GetDouble(line, "\"alpha\":", &req.alpha));
  PDX_RETURN_IF_ERROR(
      GetUint(line, "\"max_structures\":", &req.max_structures));
  PDX_RETURN_IF_ERROR(GetUint(line, "\"budget_mb\":", &req.budget_mb));
  PDX_RETURN_IF_ERROR(
      GetUint(line, "\"retry_attempts\":", &req.retry_attempts));
  PDX_RETURN_IF_ERROR(GetDouble(line, "\"deadline_ms\":", &req.deadline_ms));
  if (req.op != "ping" && req.op != "stats" && req.op != "compare" &&
      req.op != "tune" && req.op != "shutdown") {
    return Status::InvalidArgument("unknown op '" + req.op + "'");
  }
  if ((req.op == "compare" || req.op == "tune" || req.op == "stats") &&
      req.dir.empty()) {
    return Status::InvalidArgument("op '" + req.op +
                                   "' requires a \"dir\" field");
  }
  if (req.scheme != "delta" && req.scheme != "indep") {
    return Status::InvalidArgument("scheme expects delta or indep, got '" +
                                   req.scheme + "'");
  }
  if (req.budget != "static" && req.budget != "dynamic") {
    return Status::InvalidArgument("budget expects static or dynamic, got '" +
                                   req.budget + "'");
  }
  if (!req.workload.empty()) {
    auto scenario = ParseScenarioSpec(req.workload);
    if (!scenario.ok()) return scenario.status();
    // Canonical form: equivalent specs map to one warm-catalog key.
    req.workload = FormatScenarioSpec(*scenario);
  }
  if (!req.faults.empty()) {
    if (req.op == "tune") {
      return Status::InvalidArgument(
          "faults is incompatible with tune sessions (the shared signature "
          "cache's cross-configuration call sharing bypasses injection)");
    }
    PDX_RETURN_IF_ERROR(ParseFaultSpec(req.faults).status());
  }
  if (req.retry_attempts == 0 || req.retry_attempts > 100) {
    return Status::InvalidArgument("retry_attempts expects 1..100");
  }
  if (!(req.deadline_ms > 0.0)) {
    return Status::InvalidArgument("deadline_ms expects a positive number");
  }
  return req;
}

std::string SelectionFingerprint(const SelectionResult& r) {
  std::string s = StringFormat(
      "best=%u;prcs=%.17g;reached=%d;sampled=%llu;rounds=%llu;active=%u",
      r.best, r.pr_cs, r.reached_target ? 1 : 0,
      static_cast<unsigned long long>(r.queries_sampled),
      static_cast<unsigned long long>(r.rounds), r.active_configs);
  for (double e : r.estimates) s += StringFormat(";e=%.17g", e);
  for (uint32_t n : r.final_strata) s += StringFormat(";s=%u", n);
  for (uint32_t n : r.eliminated_at) s += StringFormat(";x=%u", n);
  return s;
}

std::string TuneFingerprint(const TuneResult& r) {
  return StringFormat(
      "init=%.17g;final=%.17g;indexes=%zu;views=%zu", r.initial_cost,
      r.final_cost, r.config.indexes().size(), r.config.views().size());
}

uint64_t FingerprintHash(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string OkPingResponse(const ServiceRequest& req) {
  return Head(req, true) + "}\n";
}

std::string ErrorResponse(const ServiceRequest& req,
                          const std::string& message) {
  return Head(req, false) +
         StringFormat(",\"error\":\"%s\"}\n", JsonEscape(message).c_str());
}

std::string CompareResponse(const ServiceRequest& req,
                            const SelectionResult& r, double wall_ms,
                            uint64_t calls_delta) {
  const std::string fp = SelectionFingerprint(r);
  std::string out = Head(req, true);
  out += StringFormat(
      ",\"best\":%u,\"pr_cs\":%.17g,\"queries_sampled\":%llu,"
      "\"rounds\":%llu,\"active_configs\":%u,\"calls_delta\":%llu,"
      "\"whatif_failures\":%llu,\"degraded_cells\":%llu,"
      "\"wall_ms\":%.3f,\"fingerprint\":\"%016llx\",\"estimates\":[",
      r.best, r.pr_cs, static_cast<unsigned long long>(r.queries_sampled),
      static_cast<unsigned long long>(r.rounds), r.active_configs,
      static_cast<unsigned long long>(calls_delta),
      static_cast<unsigned long long>(r.whatif_failures),
      static_cast<unsigned long long>(r.degraded_cells), wall_ms,
      static_cast<unsigned long long>(FingerprintHash(fp)));
  for (size_t i = 0; i < r.estimates.size(); ++i) {
    out += StringFormat("%s%.17g", i == 0 ? "" : ",", r.estimates[i]);
  }
  out += "]}\n";
  return out;
}

std::string TuneResponse(const ServiceRequest& req, const TuneResult& r,
                         double wall_ms) {
  const std::string fp = TuneFingerprint(r);
  return Head(req, true) +
         StringFormat(
             ",\"initial_cost\":%.17g,\"final_cost\":%.17g,"
             "\"indexes\":%zu,\"views\":%zu,\"optimizer_calls\":%llu,"
             "\"wall_ms\":%.3f,\"fingerprint\":\"%016llx\"}\n",
             r.initial_cost, r.final_cost, r.config.indexes().size(),
             r.config.views().size(),
             static_cast<unsigned long long>(r.optimizer_calls), wall_ms,
             static_cast<unsigned long long>(FingerprintHash(fp)));
}

std::string StatsResponse(const ServiceRequest& req,
                          const SharedCacheStats& s) {
  return Head(req, true) +
         StringFormat(
             ",\"cold_calls\":%llu,\"signature_hits\":%llu,"
             "\"exact_hits\":%llu,\"distinct_signatures\":%llu,"
             "\"bound_derivation_calls\":%llu,\"catalog_loads\":%llu,"
             "\"catalog_hits\":%llu,\"catalog_evictions\":%llu,"
             "\"sessions\":%llu}\n",
             static_cast<unsigned long long>(s.cold_calls),
             static_cast<unsigned long long>(s.signature_hits),
             static_cast<unsigned long long>(s.exact_hits),
             static_cast<unsigned long long>(s.distinct_signatures),
             static_cast<unsigned long long>(s.bound_derivation_calls),
             static_cast<unsigned long long>(s.catalog_loads),
             static_cast<unsigned long long>(s.catalog_hits),
             static_cast<unsigned long long>(s.catalog_evictions),
             static_cast<unsigned long long>(s.sessions));
}

std::string ShutdownResponse(const ServiceRequest& req) {
  return Head(req, true) + ",\"draining\":true}\n";
}

}  // namespace pdx::service
