// Copyright (c) the pdexplore authors.
// Wire protocol of the selection-as-a-service daemon (`pdx_tool serve`,
// DESIGN.md §12): newline-delimited JSON, one request object per line,
// one response object per line. The framing is deliberately the same
// line-oriented, dependency-free JSON the run ledger already speaks —
// a session is scriptable from a shell (`printf ... | nc`), and the
// parser is the ledger's first-match scalar extraction, not a general
// JSON reader.
//
// Requests:
//   {"op":"ping"}
//   {"op":"stats","dir":DIR}              shared-cache economics of DIR
//   {"op":"compare","dir":DIR,"seed":N,"alpha":A,"scheme":"delta|indep",
//    "budget":"static|dynamic","workload":SPEC,"faults":"pf,ps[,seed]",
//    "retry_attempts":R,"deadline_ms":D}  Algorithm-1 selection over DIR
//   {"op":"tune","dir":DIR,"seed":N,"alpha":A,"max_structures":M,
//    "budget_mb":B,"workload":SPEC}       greedy tuning over DIR
//   {"op":"shutdown"}                     drain in-flight sessions, exit
// Optional on every request: "id" (echoed back verbatim).
//
// Every response is a single JSON line with "ok":true|false; doubles are
// printed with %.17g so a response round-trips bit-exactly — the
// determinism tests compare serve responses against batch-CLI runs byte
// for byte.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/selector.h"
#include "tuner/greedy_tuner.h"

namespace pdx::service {

/// One parsed request line. Unset optional fields keep the defaults the
/// batch CLI uses, so `{"op":"compare","dir":D}` and
/// `pdx_tool compare --dir=D` describe the same run.
struct ServiceRequest {
  std::string op;
  std::string dir;
  std::string id;
  uint64_t seed = 42;
  double alpha = 0.9;
  std::string scheme = "delta";
  std::string budget = "static";
  uint64_t max_structures = 8;
  uint64_t budget_mb = 0;
  /// Scenario-workload spec (workload/scenario.h) replacing the
  /// directory's workload.pdx for this session; canonicalized by the
  /// parser so equivalent specs share one warm catalog. Empty = the
  /// saved workload.
  std::string workload;
  /// Per-session fault injection, "p_fail,p_slow[,seed]" as in the batch
  /// CLI's --faults; empty = no injection. compare only (the tune path
  /// runs on the shared signature cache, whose cross-configuration call
  /// sharing bypasses the injection point — same rule as the CLI).
  std::string faults;
  /// Retry policy of the session's fault-tolerant executor. Fields a
  /// request omits keep the RetryPolicy DEFAULTS (4 attempts, 100 ms
  /// deadline) — they are never silently zero, so setting "faults" alone
  /// runs under the same policy as the batch CLI.
  uint64_t retry_attempts = RetryPolicy{}.max_attempts;
  double deadline_ms = RetryPolicy{}.deadline_ms;
};

/// Parses one request line. Rejects lines with no "op", unknown ops,
/// ops that need a "dir" without one, and malformed numeric fields.
Result<ServiceRequest> ParseRequestLine(const std::string& line);

/// Canonical fingerprint of a selection outcome: every field that is a
/// pure function of (artifacts, seed, options) — best, Pr(CS) bits,
/// queries sampled, rounds, per-config estimates/strata/elimination
/// rounds. Deliberately EXCLUDES optimizer_calls and the budget call
/// meters: under the daemon's process-wide shared cost source those are
/// deltas of a shared counter and depend on session interleaving, while
/// the selection itself does not (the signature cache fills each cell
/// exactly once with the bit-exact uncached value). Byte-equal
/// fingerprints ⇔ byte-identical selections.
std::string SelectionFingerprint(const SelectionResult& r);

/// Same contract for a tuning outcome (chosen structures + cost bits).
std::string TuneFingerprint(const TuneResult& r);

/// FNV-1a 64-bit of a fingerprint string, for compact wire transport.
uint64_t FingerprintHash(const std::string& s);

/// Response builders — each returns exactly one '\n'-terminated line.
std::string OkPingResponse(const ServiceRequest& req);
std::string ErrorResponse(const ServiceRequest& req,
                          const std::string& message);
/// `wall_ms` is session wall-clock; `calls_delta` the shared-source call
/// delta this session observed (reported for economics, excluded from
/// the fingerprint — see SelectionFingerprint).
std::string CompareResponse(const ServiceRequest& req,
                            const SelectionResult& r, double wall_ms,
                            uint64_t calls_delta);
std::string TuneResponse(const ServiceRequest& req, const TuneResult& r,
                         double wall_ms);
struct SharedCacheStats {
  uint64_t cold_calls = 0;
  uint64_t signature_hits = 0;
  uint64_t exact_hits = 0;
  uint64_t distinct_signatures = 0;
  uint64_t bound_derivation_calls = 0;
  uint64_t catalog_loads = 0;
  uint64_t catalog_hits = 0;
  uint64_t catalog_evictions = 0;
  uint64_t sessions = 0;
};
std::string StatsResponse(const ServiceRequest& req,
                          const SharedCacheStats& s);
std::string ShutdownResponse(const ServiceRequest& req);

}  // namespace pdx::service
