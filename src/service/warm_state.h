// Copyright (c) the pdexplore authors.
// Process-wide warm state of the selection daemon (DESIGN.md §12): the
// expensive per-catalog objects — parsed artifacts, the what-if
// optimizer, the 64-shard SignatureCachingCostSource and the §6.1
// WorkloadBoundsCache — promoted from per-run stack objects (the batch
// CLI rebuilds them from cold on every invocation) to shared services
// that survive across sessions, so one session's what-if calls warm the
// next session's cache. This is ROADMAP's "resident process with shared
// warm state", and the reason the PR 7 warm regime is the daemon's
// default rather than a model.
//
// Concurrency contract: a WarmCatalog is immutable after load except
// for the internal caches, which are exactly-once-fill and safe under
// concurrent sessions (SignatureCachingCostSource: per-entry call_once
// over 64 shards; WorkloadBoundsCache: per-piece once protocol). The
// registry deduplicates concurrent loads of the same directory with a
// shared_future, so N sessions racing on a cold catalog pay exactly one
// load.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "core/cost_source.h"
#include "core/fault.h"
#include "optimizer/cost_bounds.h"
#include "optimizer/what_if.h"
#include "workload/workload.h"

namespace pdx::service {

/// Everything the daemon holds resident for one artifact directory.
/// Heap-allocated and handed out as shared_ptr: the workload, optimizer,
/// cost source and bounds cache all reference the schema (and each
/// other), so the struct must never move once built.
struct WarmCatalog {
  std::string dir;
  /// Canonical scenario spec this catalog's workload was generated from
  /// (workload/scenario.h), or empty when the workload is the saved
  /// workload.pdx. Part of the registry key: sessions naming the same
  /// spec share one warm catalog, sessions naming different specs never
  /// cross-pollinate caches.
  std::string workload_spec;
  Schema schema;
  std::unique_ptr<Workload> workload;
  std::vector<Configuration> configs;
  std::unique_ptr<WhatIfOptimizer> optimizer;
  /// The shared what-if memo: bit-identical to an uncached source, so
  /// selections stay deterministic however sessions interleave.
  std::unique_ptr<SignatureCachingCostSource> source;
  std::unique_ptr<CostBoundsDeriver> bounds_deriver;
  /// The shared §6.1 interval service (dynamic-budget sessions).
  std::unique_ptr<WorkloadBoundsCache> bounds;
  /// Rough resident footprint used by the registry's size bound: the
  /// dense cost-cell table dominates a warm catalog.
  size_t approx_bytes = 0;

  WarmCatalog() : schema("unloaded") {}
  WarmCatalog(const WarmCatalog&) = delete;
  WarmCatalog& operator=(const WarmCatalog&) = delete;
};

/// Loads a catalog from `dir` (schema.pdx, workload.pdx, config_*.pdx —
/// the `pdx_tool gen` layout) and builds the shared services over it.
/// A non-empty `workload_spec` (canonical scenario spec) replaces the
/// saved workload.pdx with a generated scenario workload; the schema
/// must be tpcd, since scenarios instantiate the TPC-D template bank.
Result<std::shared_ptr<WarmCatalog>> LoadWarmCatalog(
    const std::string& dir, const std::string& workload_spec = "");

/// Admission control + eviction over warm catalogs, keyed by
/// (directory, workload spec).
///
///   * Acquire() returns the resident catalog, or loads it exactly once
///     when cold (concurrent acquirers of the same dir block on one
///     shared_future — no duplicate loads, no torn state).
///   * The registry keeps at most max_catalogs resident (and, when
///     max_resident_bytes > 0, at most that many approximate bytes):
///     admission of a new catalog evicts least-recently-used entries
///     first. An entry still referenced by an in-flight session
///     (use_count > 1) is never evicted — sessions own their catalog for
///     their whole lifetime; eviction only drops the registry's
///     reference, and the memory is reclaimed when the last session
///     finishes.
///   * A failed load is not cached: the next Acquire() of that dir
///     retries.
///
/// Thread-safe; every method may be called from concurrent sessions.
class WarmStateRegistry {
 public:
  struct Options {
    size_t max_catalogs = 4;
    /// 0 disables the byte bound (the count bound always applies).
    size_t max_resident_bytes = 0;
  };

  WarmStateRegistry() : WarmStateRegistry(Options()) {}
  explicit WarmStateRegistry(Options options);

  /// Keyed by (dir, workload_spec): a scenario session warms — and is
  /// warmed by — only sessions naming the same canonical spec.
  Result<std::shared_ptr<WarmCatalog>> Acquire(
      const std::string& dir, const std::string& workload_spec = "");

  /// Cold loads performed (each is one full artifact parse + service
  /// build), warm hits served, and evictions — the admission economics
  /// the stats op and /metrics report.
  uint64_t loads() const { return loads_.load(std::memory_order_relaxed); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Currently resident catalogs.
  size_t size() const;

 private:
  struct LoadOutcome {
    Status status = Status::OK();
    std::shared_ptr<WarmCatalog> catalog;
  };
  struct Entry {
    std::shared_future<LoadOutcome> future;
    uint64_t last_used = 0;
  };

  /// Drops LRU evictable entries until the bounds hold. Caller holds mu_.
  void EvictLocked();

  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  uint64_t tick_ = 0;
  std::atomic<uint64_t> loads_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace pdx::service
