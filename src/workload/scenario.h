// Copyright (c) the pdexplore authors.
// Seeded, deterministic workload scenarios: a popularity law over the
// TPC-D template bank (uniform, Zipfian, or self-similar), a read/write
// mix, and a parameter-dispersion knob. The YCSB-style laws stress the
// paper's §6.2 Cochran/skew sample-size bounds and Algorithm 2's
// stratification exactly where they earn their keep: heavy
// template-popularity skew. Scenarios are specified on the command line
// as e.g. "zipf:0.9,rw:0.8,n:2000,seed:7,disp:1.2".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/rng.h"
#include "common/status.h"
#include "common/zipf.h"
#include "workload/workload.h"

namespace pdx {

/// How statement counts distribute over template popularity ranks.
enum class PopularityLaw : uint8_t {
  kUniform = 0,
  kZipfian = 1,
  kSelfSimilar = 2,
};

const char* PopularityLawName(PopularityLaw law);

/// Popularity distribution over `n` ranks; rank 0 is always the hottest.
///
/// - kUniform: every rank equally likely (skew ignored).
/// - kZipfian: P(rank i) ∝ 1/(i+1)^skew (common/zipf.h, skew ≥ 0).
/// - kSelfSimilar: the hot-fraction law of Gray et al.'s "Quickly
///   generating billion-record synthetic databases" — a fraction `skew`
///   (h ∈ [0.5, 1)) of draws land in the first (1-h) fraction of ranks,
///   recursively. CDF F(x) = (x/n)^c with c = log(h)/log(1-h); h = 0.5
///   degenerates to uniform.
class PopularitySampler {
 public:
  PopularitySampler(PopularityLaw law, double skew, size_t n);

  /// Draws a rank in [0, n). Consumes exactly one uniform variate.
  size_t Sample(Rng* rng) const;

  /// Probability mass of rank `i`; sums to 1 over [0, n).
  double Probability(size_t i) const;

  size_t n() const { return n_; }
  PopularityLaw law() const { return law_; }
  double skew() const { return skew_; }

 private:
  PopularityLaw law_;
  double skew_;
  size_t n_;
  std::optional<ZipfDistribution> zipf_;
  double cdf_exponent_ = 1.0;  // self-similar c = log(h)/log(1-h)
};

/// A fully specified scenario. The defaults are the uniform, read-only
/// mix, which reproduces GenerateTpcdWorkload's template spread on the
/// same bank.
struct ScenarioOptions {
  PopularityLaw law = PopularityLaw::kUniform;
  /// Zipf theta (≥ 0) or self-similar h (∈ [0.5, 1)); ignored for uniform.
  double skew = 0.0;
  /// Fraction of statements drawn from the SELECT bank; the rest come
  /// from the DML bank (both under the same popularity law).
  double read_fraction = 1.0;
  /// Scales every sampled-range parameter window around its midpoint
  /// (QueryBuilder dispersion knob); 1.0 = the template's nominal spread.
  double dispersion = 1.0;
  uint32_t num_queries = 2000;
  uint64_t seed = 20060406;
  bool include_point_lookups = true;
};

/// Parses a scenario spec string: a comma-separated list whose first
/// token names the law — "uniform", "zipf:T", or "selfsim:H" — followed
/// by optional "rw:R" (read fraction, default 1), "n:N" (statements),
/// "seed:S", "disp:D" (dispersion), and "lookups:0|1". Unknown or
/// malformed tokens are errors.
Result<ScenarioOptions> ParseScenarioSpec(std::string_view spec);

/// Canonical round-trippable rendering of `options` (used in manifests
/// and bench labels).
std::string FormatScenarioSpec(const ScenarioOptions& options);

/// Generates a scenario workload against the TPC-D schema: registers the
/// SELECT bank (and, when read_fraction < 1, the DML bank) as templates,
/// then instantiates num_queries statements with template choice from the
/// popularity law and parameters drawn through the dispersion knob.
/// Deterministic: a pure function of (schema, options), independent of
/// thread count.
Workload GenerateScenarioWorkload(const Schema& schema,
                                  const ScenarioOptions& options);

}  // namespace pdx
