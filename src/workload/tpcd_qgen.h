// Copyright (c) the pdexplore authors.
// QGEN-like workload generation for the TPC-D schema. The paper uses "a
// workload consisting of about 13K queries, generated using the standard
// QGEN tool" (and a 131K-query variant for the CLT experiment). QGEN
// instantiates each of the benchmark's query templates with randomly bound
// parameters; we mirror that: 22 TPC-H-style templates (joins of 1-6
// tables, grouping, ordering) plus two single-value-lookup templates, each
// instantiated with parameters drawn from the Zipf-skewed catalog
// statistics, so per-template cost variance is small while cross-template
// costs span multiple orders of magnitude.
#pragma once

#include <cstdint>

#include "catalog/tpcd_schema.h"
#include "common/rng.h"
#include "workload/workload.h"

namespace pdx {

/// Options for TPC-D workload generation.
struct TpcdWorkloadOptions {
  /// Number of statements to generate (paper: ~13000 / ~131000 / 2000).
  uint32_t num_queries = 13000;
  /// Seed for deterministic generation.
  uint64_t seed = 20060406;
  /// Include the two cheap single-value-lookup templates in the mix.
  bool include_point_lookups = true;
  /// Skew of template popularity; 0 = queries spread evenly across
  /// templates (QGEN's behaviour), > 0 = Zipf-weighted template choice.
  double template_skew = 0.0;
};

/// Generates a TPC-D workload against `schema` (which must have been built
/// by MakeTpcdSchema).
Workload GenerateTpcdWorkload(const Schema& schema,
                              const TpcdWorkloadOptions& options = {});

}  // namespace pdx
