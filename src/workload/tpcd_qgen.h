// Copyright (c) the pdexplore authors.
// QGEN-like workload generation for the TPC-D schema. The paper uses "a
// workload consisting of about 13K queries, generated using the standard
// QGEN tool" (and a 131K-query variant for the CLT experiment). QGEN
// instantiates each of the benchmark's query templates with randomly bound
// parameters; we mirror that: 22 TPC-H-style templates (joins of 1-6
// tables, grouping, ordering) plus two single-value-lookup templates, each
// instantiated with parameters drawn from the Zipf-skewed catalog
// statistics, so per-template cost variance is small while cross-template
// costs span multiple orders of magnitude.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "catalog/tpcd_schema.h"
#include "common/rng.h"
#include "workload/query_builder.h"
#include "workload/workload.h"

namespace pdx {

/// One parameterized template: a fixed skeleton (the build functor) that a
/// caller instantiates with freshly sampled parameters by handing it a
/// QueryBuilder. The caller owns the builder, so scenario generators can
/// thread their own RNG stream and dispersion knob through every draw.
struct TpcdTemplateSpec {
  const char* name;
  std::function<Query(QueryBuilder&, TemplateId)> build;
  StatementKind kind = StatementKind::kSelect;
};

/// The 22-template TPC-H-style SELECT bank (plus two single-value lookup
/// templates when `include_point_lookups`). Deterministic: the returned
/// specs are a pure function of the arguments.
std::vector<TpcdTemplateSpec> TpcdTemplateBank(bool include_point_lookups);

/// DML companions to the SELECT bank: order-entry INSERTs, stock and
/// balance UPDATEs, and an order-purge DELETE. Used by the scenario
/// generator's read/write-mix knob.
std::vector<TpcdTemplateSpec> TpcdDmlTemplateBank();

/// Options for TPC-D workload generation.
struct TpcdWorkloadOptions {
  /// Number of statements to generate (paper: ~13000 / ~131000 / 2000).
  uint32_t num_queries = 13000;
  /// Seed for deterministic generation.
  uint64_t seed = 20060406;
  /// Include the two cheap single-value-lookup templates in the mix.
  bool include_point_lookups = true;
  /// Skew of template popularity; 0 = queries spread evenly across
  /// templates (QGEN's behaviour), > 0 = Zipf-weighted template choice.
  double template_skew = 0.0;
};

/// Generates a TPC-D workload against `schema` (which must have been built
/// by MakeTpcdSchema).
Workload GenerateTpcdWorkload(const Schema& schema,
                              const TpcdWorkloadOptions& options = {});

}  // namespace pdx
