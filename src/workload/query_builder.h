// Copyright (c) the pdexplore authors.
// Fluent helper for constructing Query IR from catalog statistics. Shared
// by the TPC-D and CRM workload generators and by tests.
#pragma once

#include <initializer_list>
#include <string_view>

#include "catalog/schema.h"
#include "catalog/statistics.h"
#include "common/rng.h"
#include "workload/query.h"

namespace pdx {

/// Builds one Query. Selectivities of sampled predicates come from the
/// referenced column's statistics, so repeated builds of the same template
/// produce the within-template selectivity spread QGEN-style binding has.
class QueryBuilder {
 public:
  /// `dispersion` scales the width of every sampled-range window around its
  /// midpoint: 1.0 reproduces the template's nominal spread, values in
  /// (0, 1) concentrate parameter draws, values > 1 widen them (clamped to
  /// the column domain). Scenario generators use it as the
  /// parameter-dispersion knob.
  QueryBuilder(const Schema& schema, Rng* rng, double dispersion = 1.0)
      : schema_(schema), rng_(rng), dispersion_(dispersion) {
    PDX_CHECK(rng != nullptr);
    PDX_CHECK(dispersion > 0.0);
  }

  /// Adds a FROM-clause table; returns its access index.
  uint32_t AddAccess(TableId table);

  /// Column id by name on the table of access `a` (aborts if missing).
  ColumnId Col(uint32_t a, std::string_view name) const;

  /// Adds `col = ?` with the literal's frequency rank sampled from the
  /// column's value distribution (popular values are queried more often).
  void AddSampledEq(uint32_t a, ColumnId col);

  /// Adds `col = ?` with a fixed frequency rank.
  void AddEq(uint32_t a, ColumnId col, uint64_t value_rank);

  /// Adds a range predicate covering a domain fraction drawn uniformly
  /// from [lo_fraction, hi_fraction].
  void AddSampledRange(uint32_t a, ColumnId col, double lo_fraction,
                       double hi_fraction);

  /// Adds an unsargable filter (e.g. LIKE '%x%') with the given selectivity.
  void AddUnsargable(uint32_t a, ColumnId col, double selectivity);

  /// Adds an equi-join edge between two accesses.
  void AddJoin(uint32_t left, uint32_t right, ColumnId left_col,
               ColumnId right_col);

  void GroupBy(uint32_t a, ColumnId col);
  void OrderBy(uint32_t a, ColumnId col);
  void SetAggregates(uint32_t n) { spec_.num_aggregates = n; }

  /// Marks columns of access `a` as referenced by the query output.
  void Refer(uint32_t a, std::initializer_list<ColumnId> cols);

  /// Finalizes a SELECT query (referenced-column sets are deduplicated and
  /// join/predicate/grouping columns folded in automatically).
  Query BuildSelect(TemplateId template_id);

  /// Finalizes DML: kind is kInsert/kUpdate/kDelete; `selectivity` is the
  /// affected-row fraction (pass 0 to derive it from the WHERE clause).
  Query BuildDml(TemplateId template_id, StatementKind kind, TableId table,
                 std::vector<ColumnId> set_columns, double selectivity = 0.0);

 private:
  void FoldReferencedColumns();

  const Schema& schema_;
  Rng* rng_;
  double dispersion_ = 1.0;
  SelectSpec spec_;
};

}  // namespace pdx
