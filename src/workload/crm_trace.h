// Copyright (c) the pdexplore authors.
// Trace-style workload generation for the CRM-like schema. The paper's
// real-life workload was captured with a trace tool: "about 6K queries,
// inserts, updates and deletes" over ">120 distinct templates". We emit a
// statement mix with the same gross shape: OLTP point reads and writes on
// hot tables, occasional reporting joins, Zipf-skewed template popularity.
#pragma once

#include <cstdint>

#include "catalog/crm_schema.h"
#include "common/rng.h"
#include "workload/workload.h"

namespace pdx {

/// Options for CRM trace generation.
struct CrmTraceOptions {
  /// Number of statements (paper: ~6000).
  uint32_t num_statements = 6000;
  /// Number of distinct templates to synthesize (paper: > 120).
  uint32_t num_templates = 130;
  /// Skew of template popularity in the trace.
  double template_skew = 0.6;
  /// Fraction of DML templates (inserts + updates + deletes).
  double dml_template_fraction = 0.35;
  /// Seed for deterministic generation.
  uint64_t seed = 19991231;
};

/// Generates a CRM trace workload against `schema` (built by MakeCrmSchema).
Workload GenerateCrmTrace(const Schema& schema,
                          const CrmTraceOptions& options = {});

}  // namespace pdx
