#include "workload/sql_text.h"

#include <cctype>
#include <sstream>

#include "common/string_util.h"

namespace pdx {

namespace {

std::string ColumnName(const Schema& schema, const ColumnRef& ref) {
  return schema.table(ref.table).columns[ref.column].name;
}

std::string LiteralFor(const Column& column, const Predicate& pred) {
  switch (pred.op) {
    case PredOp::kEq:
    case PredOp::kIn:
      switch (column.type) {
        case DataType::kChar:
        case DataType::kVarchar:
          return StringFormat("'v%llu'",
                              static_cast<unsigned long long>(pred.value_rank));
        case DataType::kDate:
          return StringFormat("DATE '1998-%02u-%02u'",
                              static_cast<unsigned>(pred.value_rank % 12 + 1),
                              static_cast<unsigned>(pred.value_rank % 28 + 1));
        default:
          return StringFormat("%llu",
                              static_cast<unsigned long long>(pred.value_rank));
      }
    case PredOp::kRange:
      return FormatDouble(pred.domain_fraction * 1000.0, 2);
    case PredOp::kLike:
      return StringFormat("'%%v%llu%%'",
                          static_cast<unsigned long long>(pred.value_rank));
  }
  return "?";
}

const char* OpText(PredOp op) {
  switch (op) {
    case PredOp::kEq:
      return "=";
    case PredOp::kRange:
      return "<";
    case PredOp::kLike:
      return "LIKE";
    case PredOp::kIn:
      return "IN";
  }
  return "=";
}

void RenderPredicates(const Schema& schema, const SelectSpec& spec,
                      std::ostringstream* os) {
  bool first = true;
  for (const TableAccess& a : spec.accesses) {
    const Table& t = schema.table(a.table);
    for (const Predicate& p : a.predicates) {
      *os << (first ? " WHERE " : " AND ");
      first = false;
      const Column& col = t.columns[p.column.column];
      *os << t.name << "." << col.name << " " << OpText(p.op) << " "
          << LiteralFor(col, p);
    }
  }
  for (const JoinEdge& j : spec.joins) {
    *os << (first ? " WHERE " : " AND ");
    first = false;
    const Table& lt = schema.table(spec.accesses[j.left_access].table);
    const Table& rt = schema.table(spec.accesses[j.right_access].table);
    *os << lt.name << "." << lt.columns[j.left_column].name << " = " << rt.name
        << "." << rt.columns[j.right_column].name;
  }
}

std::string RenderSelect(const Schema& schema, const SelectSpec& spec) {
  std::ostringstream os;
  os << "SELECT ";
  bool first = true;
  for (uint32_t i = 0; i < spec.num_aggregates; ++i) {
    os << (first ? "" : ", ") << "SUM(expr" << i << ")";
    first = false;
  }
  for (const ColumnRef& g : spec.group_by) {
    os << (first ? "" : ", ") << schema.table(g.table).name << "."
       << ColumnName(schema, g);
    first = false;
  }
  if (first) {
    // Plain column output: render the referenced columns of the first table.
    const TableAccess& a = spec.accesses.front();
    const Table& t = schema.table(a.table);
    for (ColumnId c : a.referenced_columns) {
      os << (first ? "" : ", ") << t.name << "." << t.columns[c].name;
      first = false;
    }
    if (first) os << "*";
  }
  os << " FROM ";
  for (size_t i = 0; i < spec.accesses.size(); ++i) {
    if (i > 0) os << ", ";
    os << schema.table(spec.accesses[i].table).name;
  }
  RenderPredicates(schema, spec, &os);
  if (!spec.group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < spec.group_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << schema.table(spec.group_by[i].table).name << "."
         << ColumnName(schema, spec.group_by[i]);
    }
  }
  if (!spec.order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < spec.order_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << schema.table(spec.order_by[i].table).name << "."
         << ColumnName(schema, spec.order_by[i]);
    }
  }
  return os.str();
}

std::string RenderDml(const Schema& schema, const Query& query) {
  const UpdateSpec& u = *query.update;
  const Table& t = schema.table(u.table);
  std::ostringstream os;
  switch (u.kind) {
    case StatementKind::kInsert: {
      os << "INSERT INTO " << t.name << " (";
      for (size_t i = 0; i < u.set_columns.size(); ++i) {
        if (i > 0) os << ", ";
        os << t.columns[u.set_columns[i]].name;
      }
      os << ") VALUES (";
      for (size_t i = 0; i < u.set_columns.size(); ++i) {
        if (i > 0) os << ", ";
        os << i;
      }
      os << ")";
      break;
    }
    case StatementKind::kUpdate: {
      os << "UPDATE " << t.name << " SET ";
      for (size_t i = 0; i < u.set_columns.size(); ++i) {
        if (i > 0) os << ", ";
        os << t.columns[u.set_columns[i]].name << " = " << i;
      }
      break;
    }
    case StatementKind::kDelete:
      os << "DELETE FROM " << t.name;
      break;
    case StatementKind::kSelect:
      PDX_CHECK_MSG(false, "RenderDml on SELECT");
  }
  if (u.kind != StatementKind::kInsert && !query.select.accesses.empty()) {
    std::ostringstream preds;
    RenderPredicates(schema, query.select, &preds);
    os << preds.str();
  }
  return os.str();
}

}  // namespace

std::string RenderSql(const Schema& schema, const Query& query) {
  if (query.kind == StatementKind::kSelect) {
    return RenderSelect(schema, query.select);
  }
  return RenderDml(schema, query);
}

std::string NormalizeSqlTemplate(std::string_view sql) {
  std::string out;
  out.reserve(sql.size());
  size_t i = 0;
  bool last_space = false;
  auto push = [&](char c) {
    if (c == ' ') {
      if (last_space || out.empty()) return;
      last_space = true;
    } else {
      last_space = false;
    }
    out.push_back(c);
  };
  while (i < sql.size()) {
    char c = sql[i];
    if (c == '\'') {
      // String literal: skip to closing quote (doubled quotes escape).
      ++i;
      while (i < sql.size()) {
        if (sql[i] == '\'' &&
            (i + 1 >= sql.size() || sql[i + 1] != '\'')) {
          ++i;
          break;
        }
        i += sql[i] == '\'' ? 2 : 1;
      }
      push('?');
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) &&
        (out.empty() ||
         (!std::isalnum(static_cast<unsigned char>(out.back())) &&
          out.back() != '_'))) {
      // Numeric literal (not part of an identifier): consume digits,
      // decimal point, exponent.
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E' ||
              ((sql[i] == '+' || sql[i] == '-') && i > 0 &&
               (sql[i - 1] == 'e' || sql[i - 1] == 'E')))) {
        ++i;
      }
      push('?');
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      push(' ');
      ++i;
      continue;
    }
    push(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    ++i;
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

uint64_t SqlTemplateSignature(std::string_view sql) {
  return Fnv1aHash(NormalizeSqlTemplate(sql));
}

}  // namespace pdx
