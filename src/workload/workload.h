// Copyright (c) the pdexplore authors.
// A workload: the ordered multiset of statements the comparison primitive
// samples from, together with its template index (the unit of
// stratification in §5.1).
#pragma once

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "workload/query.h"

namespace pdx {

/// An in-memory workload bound to a schema. Query ids equal their position.
class Workload {
 public:
  explicit Workload(const Schema* schema) : schema_(schema) {
    PDX_CHECK(schema != nullptr);
  }

  /// Appends a query, assigning its id; registers its template if new.
  QueryId AddQuery(Query query);

  /// Registers a template; returns its id. Templates must be registered
  /// before queries referencing them are added.
  TemplateId AddTemplate(QueryTemplate tmpl);

  size_t size() const { return queries_.size(); }
  const Query& query(QueryId id) const;
  const std::vector<Query>& queries() const { return queries_; }

  size_t num_templates() const { return templates_.size(); }
  const QueryTemplate& query_template(TemplateId id) const;
  const std::vector<QueryTemplate>& templates() const { return templates_; }

  /// Ids of queries with the given template.
  const std::vector<QueryId>& QueriesOfTemplate(TemplateId id) const;

  const Schema& schema() const { return *schema_; }

  /// Fraction of DML statements.
  double DmlFraction() const;

  /// Checks internal consistency: template references in range, table and
  /// column references valid for the schema, selectivities in (0, 1].
  Status Validate() const;

 private:
  const Schema* schema_;
  std::vector<Query> queries_;
  std::vector<QueryTemplate> templates_;
  std::vector<std::vector<QueryId>> template_members_;
};

}  // namespace pdx
