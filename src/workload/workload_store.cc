#include "workload/workload_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace pdx {

namespace {
// Record format: "<id>\t<template>\t<sql-with-escaped-newlines>\n".
std::string EscapeSql(std::string_view sql) {
  std::string out;
  out.reserve(sql.size());
  for (char c : sql) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\\') {
      out += "\\\\";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeSql(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] == '\\' && i + 1 < raw.size()) {
      ++i;
      out.push_back(raw[i] == 'n' ? '\n' : raw[i]);
    } else {
      out.push_back(raw[i]);
    }
  }
  return out;
}
}  // namespace

WorkloadStore::~WorkloadStore() {
  if (file_ != nullptr) std::fclose(file_);
}

WorkloadStore::WorkloadStore(WorkloadStore&& other) noexcept {
  *this = std::move(other);
}

WorkloadStore& WorkloadStore::operator=(WorkloadStore&& other) noexcept {
  if (this == &other) return *this;
  if (file_ != nullptr) std::fclose(file_);
  path_ = std::move(other.path_);
  file_ = other.file_;
  writable_ = other.writable_;
  index_ = std::move(other.index_);
  other.file_ = nullptr;
  return *this;
}

Result<WorkloadStore> WorkloadStore::Create(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w+");
  if (f == nullptr) {
    return Status::IOError("cannot create workload store at '" + path + "'");
  }
  WorkloadStore store;
  store.path_ = path;
  store.file_ = f;
  store.writable_ = true;
  return store;
}

Result<WorkloadStore> WorkloadStore::Open(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return Status::IOError("cannot open workload store at '" + path + "'");
  }
  WorkloadStore store;
  store.path_ = path;
  store.file_ = f;
  store.writable_ = false;

  // One scan to rebuild the index.
  uint64_t offset = 0;
  char* line = nullptr;
  size_t cap = 0;
  ssize_t len;
  while ((len = getline(&line, &cap, f)) != -1) {
    unsigned long long id = 0, tmpl = 0;
    if (std::sscanf(line, "%llu\t%llu\t", &id, &tmpl) != 2) {
      std::free(line);
      return Status::IOError("corrupt record at offset " +
                             std::to_string(offset));
    }
    if (id != store.index_.size()) {
      std::free(line);
      return Status::IOError("non-contiguous query id at offset " +
                             std::to_string(offset));
    }
    store.index_.push_back({offset, static_cast<TemplateId>(tmpl)});
    offset += static_cast<uint64_t>(len);
  }
  std::free(line);
  return store;
}

Status WorkloadStore::Append(QueryId id, TemplateId template_id,
                             std::string_view sql) {
  if (!writable_ || file_ == nullptr) {
    return Status::FailedPrecondition("store not open for writing");
  }
  if (id != index_.size()) {
    return Status::InvalidArgument("ids must be appended contiguously");
  }
  // Interleaved reads may have moved the stream position.
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IOError("seek-to-end failed");
  }
  long pos = std::ftell(file_);
  if (pos < 0) return Status::IOError("ftell failed");
  std::string esc = EscapeSql(sql);
  if (std::fprintf(file_, "%u\t%u\t%s\n", id, template_id, esc.c_str()) < 0) {
    return Status::IOError("write failed");
  }
  index_.push_back({static_cast<uint64_t>(pos), template_id});
  return Status::OK();
}

Status WorkloadStore::Flush() {
  if (file_ == nullptr) return Status::FailedPrecondition("store not open");
  if (std::fflush(file_) != 0) return Status::IOError("fflush failed");
  return Status::OK();
}

Status WorkloadStore::ParseRecordAt(uint64_t offset, StoredQuery* out) const {
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  char* line = nullptr;
  size_t cap = 0;
  ssize_t len = getline(&line, &cap, file_);
  if (len == -1) {
    std::free(line);
    return Status::IOError("read failed at offset " + std::to_string(offset));
  }
  std::string_view view(line, static_cast<size_t>(len));
  if (!view.empty() && view.back() == '\n') view.remove_suffix(1);
  size_t tab1 = view.find('\t');
  size_t tab2 = view.find('\t', tab1 == std::string_view::npos ? 0 : tab1 + 1);
  if (tab1 == std::string_view::npos || tab2 == std::string_view::npos) {
    std::free(line);
    return Status::IOError("corrupt record");
  }
  out->id = static_cast<QueryId>(
      std::strtoull(std::string(view.substr(0, tab1)).c_str(), nullptr, 10));
  out->template_id = static_cast<TemplateId>(std::strtoull(
      std::string(view.substr(tab1 + 1, tab2 - tab1 - 1)).c_str(), nullptr,
      10));
  out->sql = UnescapeSql(view.substr(tab2 + 1));
  std::free(line);
  return Status::OK();
}

Result<StoredQuery> WorkloadStore::Read(QueryId id) const {
  if (file_ == nullptr) return Status::FailedPrecondition("store not open");
  if (id >= index_.size()) {
    return Status::OutOfRange("query id " + std::to_string(id));
  }
  StoredQuery out;
  PDX_RETURN_IF_ERROR(ParseRecordAt(index_[id].offset, &out));
  return out;
}

Result<std::vector<StoredQuery>> WorkloadStore::ReadMany(
    std::vector<QueryId> ids) const {
  if (file_ == nullptr) return Status::FailedPrecondition("store not open");
  // Visit records in file order: the single forward scan of the paper's
  // preprocessing step.
  std::sort(ids.begin(), ids.end());
  std::vector<StoredQuery> out;
  out.reserve(ids.size());
  for (QueryId id : ids) {
    if (id >= index_.size()) {
      return Status::OutOfRange("query id " + std::to_string(id));
    }
    StoredQuery q;
    PDX_RETURN_IF_ERROR(ParseRecordAt(index_[id].offset, &q));
    out.push_back(std::move(q));
  }
  return out;
}

Result<std::vector<StoredQuery>> WorkloadStore::SampleQueries(
    size_t n, Rng* rng) const {
  PDX_CHECK(rng != nullptr);
  if (n > index_.size()) {
    return Status::InvalidArgument("sample larger than store");
  }
  std::vector<uint32_t> chosen = rng->SampleWithoutReplacement(index_.size(), n);
  std::vector<QueryId> ids(chosen.begin(), chosen.end());
  return ReadMany(std::move(ids));
}

Result<TemplateId> WorkloadStore::TemplateOf(QueryId id) const {
  if (id >= index_.size()) {
    return Status::OutOfRange("query id " + std::to_string(id));
  }
  return index_[id].template_id;
}

std::vector<QueryId> WorkloadStore::IdsOfTemplate(TemplateId template_id) const {
  std::vector<QueryId> out;
  for (size_t i = 0; i < index_.size(); ++i) {
    if (index_[i].template_id == template_id) {
      out.push_back(static_cast<QueryId>(i));
    }
  }
  return out;
}

}  // namespace pdx
