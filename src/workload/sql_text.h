// Copyright (c) the pdexplore authors.
// SQL text rendering and template-signature extraction.
//
// The paper's preprocessing step stores query *strings* in a workload table
// keyed by id and template; templates ("signatures"/"skeletons") identify
// queries that are identical up to constant bindings. We render our query
// IR to SQL so workloads can round-trip through the file-backed store, and
// we extract signatures from raw SQL by literal normalization — the
// "parsing the queries" route the paper mentions, which costs a small
// fraction of optimization.
#pragma once

#include <string>
#include <string_view>

#include "catalog/schema.h"
#include "workload/query.h"

namespace pdx {

/// Renders a query to SQL text against the given schema. The output is
/// deterministic, and two queries of the same template render to texts with
/// identical signatures (see NormalizeSqlTemplate).
std::string RenderSql(const Schema& schema, const Query& query);

/// Normalizes SQL text to its template skeleton: lower-cases keywords and
/// identifiers, collapses whitespace, and replaces numeric and string
/// literals with '?' placeholders.
std::string NormalizeSqlTemplate(std::string_view sql);

/// 64-bit signature of the normalized template text.
uint64_t SqlTemplateSignature(std::string_view sql);

}  // namespace pdx
