// Copyright (c) the pdexplore authors.
// Query intermediate representation. A Query captures exactly the
// information the what-if optimizer needs to price it against a physical
// design: which tables it touches, which predicates with which
// (optimizer-estimated) selectivities, the join graph, grouping/ordering
// requirements, and — for DML — the update part after the standard
// SELECT/UPDATE split the paper describes in §6.1.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "catalog/types.h"

namespace pdx {

/// SQL statement kind.
enum class StatementKind : uint8_t { kSelect, kInsert, kUpdate, kDelete };

const char* StatementKindName(StatementKind kind);

/// Predicate comparison operator. Only the shape matters to the cost
/// model (equality seeks vs. range scans vs. unsargable filters).
enum class PredOp : uint8_t { kEq, kRange, kLike, kIn };

/// A single predicate on a column, carrying its optimizer-estimated
/// selectivity. Selectivities are fixed at workload-generation time from
/// catalog statistics; the optimizer treats them as its own estimates.
struct Predicate {
  ColumnRef column;
  PredOp op = PredOp::kEq;
  /// Estimated fraction of rows satisfying the predicate, in (0, 1].
  double selectivity = 1.0;
  /// False for predicates no index can serve (e.g. LIKE '%x%').
  bool sargable = true;
  /// Rendering/bookkeeping: frequency rank of the equality literal.
  uint64_t value_rank = 0;
  /// Rendering/bookkeeping: domain fraction of a range literal.
  double domain_fraction = 0.0;
};

/// One table occurrence in the FROM clause with its local predicates and
/// the set of columns the rest of the plan needs from it.
struct TableAccess {
  TableId table = kInvalidTableId;
  std::vector<Predicate> predicates;
  /// Columns of `table` referenced anywhere in the query (output list,
  /// join keys, grouping, ordering). Used for covering-index checks.
  std::vector<ColumnId> referenced_columns;

  /// Product of predicate selectivities (independence assumption).
  double CombinedSelectivity() const;
  /// Selectivity counting only sargable predicates on the given leading
  /// column (what an index seek on that column can apply).
  double SargableSelectivityOn(ColumnId column) const;
};

/// An equi-join edge between two table accesses (by index into
/// SelectSpec::accesses).
struct JoinEdge {
  uint32_t left_access = 0;
  uint32_t right_access = 0;
  ColumnId left_column = kInvalidColumnId;
  ColumnId right_column = kInvalidColumnId;
};

/// The SELECT shape of a statement (also the SELECT half of split DML).
struct SelectSpec {
  std::vector<TableAccess> accesses;
  /// Join edges; the optimizer composes them left-deep in the given order,
  /// which the generators arrange from most- to least-selective.
  std::vector<JoinEdge> joins;
  std::vector<ColumnRef> group_by;
  std::vector<ColumnRef> order_by;
  /// Number of aggregate expressions in the output list.
  uint32_t num_aggregates = 0;

  bool IsSingleTable() const { return accesses.size() == 1; }
};

/// The UPDATE half of split DML (§6.1): the base-table modification whose
/// cost grows with selectivity plus per-structure maintenance.
struct UpdateSpec {
  TableId table = kInvalidTableId;
  /// kInsert, kUpdate or kDelete.
  StatementKind kind = StatementKind::kUpdate;
  /// Columns written (UPDATE SET list / INSERT column list). Empty for
  /// DELETE, which logically touches every column.
  std::vector<ColumnId> set_columns;
  /// Estimated fraction of the table's rows affected. For INSERT this is
  /// 1/row_count (a single row).
  double selectivity = 0.0;
};

/// A workload statement.
struct Query {
  QueryId id = 0;
  TemplateId template_id = 0;
  StatementKind kind = StatementKind::kSelect;
  /// Present for SELECT and for the SELECT part of UPDATE/DELETE; for
  /// INSERT the spec is empty.
  SelectSpec select;
  /// Present for INSERT/UPDATE/DELETE.
  std::optional<UpdateSpec> update;
  /// Relative cost of one optimizer call for this statement (§5.2 notes
  /// optimization overhead may differ across templates).
  double optimize_overhead = 1.0;

  bool IsDml() const { return kind != StatementKind::kSelect; }
};

/// Static description of a query template ("signature"/"skeleton"): the
/// statement with literals abstracted away. Queries sharing a template
/// differ only in parameter bindings (and hence selectivities).
struct QueryTemplate {
  TemplateId id = 0;
  std::string name;
  StatementKind kind = StatementKind::kSelect;
  /// Tables referenced, in FROM-clause order.
  std::vector<TableId> tables;
  /// Signature hash of the normalized SQL text.
  uint64_t signature = 0;
};

}  // namespace pdx
