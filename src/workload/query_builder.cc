#include "workload/query_builder.h"

#include <algorithm>

namespace pdx {

uint32_t QueryBuilder::AddAccess(TableId table) {
  PDX_CHECK(table < schema_.num_tables());
  TableAccess access;
  access.table = table;
  spec_.accesses.push_back(std::move(access));
  return static_cast<uint32_t>(spec_.accesses.size() - 1);
}

ColumnId QueryBuilder::Col(uint32_t a, std::string_view name) const {
  PDX_CHECK(a < spec_.accesses.size());
  ColumnId id = schema_.table(spec_.accesses[a].table).FindColumn(name);
  PDX_CHECK_MSG(id != kInvalidColumnId, std::string(name).c_str());
  return id;
}

void QueryBuilder::AddSampledEq(uint32_t a, ColumnId col) {
  PDX_CHECK(a < spec_.accesses.size());
  TableAccess& access = spec_.accesses[a];
  const Column& column = schema_.table(access.table).columns[col];
  ColumnStatistics stats(column);
  uint64_t rank = stats.SampleValueRank(rng_);
  AddEq(a, col, rank);
}

void QueryBuilder::AddEq(uint32_t a, ColumnId col, uint64_t value_rank) {
  PDX_CHECK(a < spec_.accesses.size());
  TableAccess& access = spec_.accesses[a];
  const Column& column = schema_.table(access.table).columns[col];
  ColumnStatistics stats(column);
  Predicate p;
  p.column = {access.table, col};
  p.op = PredOp::kEq;
  p.selectivity = stats.EqualitySelectivity(value_rank);
  p.value_rank = value_rank;
  access.predicates.push_back(p);
}

void QueryBuilder::AddSampledRange(uint32_t a, ColumnId col,
                                   double lo_fraction, double hi_fraction) {
  PDX_CHECK(a < spec_.accesses.size());
  PDX_CHECK(lo_fraction > 0.0 && lo_fraction <= hi_fraction &&
            hi_fraction <= 1.0);
  TableAccess& access = spec_.accesses[a];
  const Column& column = schema_.table(access.table).columns[col];
  ColumnStatistics stats(column);
  // The dispersion knob rescales the sampling window around its midpoint.
  // The draw itself always consumes exactly one uniform variate, so
  // dispersion changes selectivity spread without perturbing the stream of
  // random numbers later predicates see.
  const double mid = 0.5 * (lo_fraction + hi_fraction);
  const double half = 0.5 * (hi_fraction - lo_fraction) * dispersion_;
  const double lo = std::max(1e-6, mid - half);
  const double hi = std::min(1.0, std::max(lo, mid + half));
  Predicate p;
  p.column = {access.table, col};
  p.op = PredOp::kRange;
  p.domain_fraction = rng_->NextDouble(lo, hi);
  p.selectivity = stats.RangeSelectivity(p.domain_fraction);
  access.predicates.push_back(p);
}

void QueryBuilder::AddUnsargable(uint32_t a, ColumnId col,
                                 double selectivity) {
  PDX_CHECK(a < spec_.accesses.size());
  PDX_CHECK(selectivity > 0.0 && selectivity <= 1.0);
  TableAccess& access = spec_.accesses[a];
  Predicate p;
  p.column = {access.table, col};
  p.op = PredOp::kLike;
  p.selectivity = selectivity;
  p.sargable = false;
  access.predicates.push_back(p);
}

void QueryBuilder::AddJoin(uint32_t left, uint32_t right, ColumnId left_col,
                           ColumnId right_col) {
  PDX_CHECK(left < spec_.accesses.size());
  PDX_CHECK(right < spec_.accesses.size());
  PDX_CHECK(left != right);
  JoinEdge e;
  e.left_access = left;
  e.right_access = right;
  e.left_column = left_col;
  e.right_column = right_col;
  spec_.joins.push_back(e);
}

void QueryBuilder::GroupBy(uint32_t a, ColumnId col) {
  PDX_CHECK(a < spec_.accesses.size());
  spec_.group_by.push_back({spec_.accesses[a].table, col});
}

void QueryBuilder::OrderBy(uint32_t a, ColumnId col) {
  PDX_CHECK(a < spec_.accesses.size());
  spec_.order_by.push_back({spec_.accesses[a].table, col});
}

void QueryBuilder::Refer(uint32_t a, std::initializer_list<ColumnId> cols) {
  PDX_CHECK(a < spec_.accesses.size());
  TableAccess& access = spec_.accesses[a];
  access.referenced_columns.insert(access.referenced_columns.end(),
                                   cols.begin(), cols.end());
}

void QueryBuilder::FoldReferencedColumns() {
  // Fold predicate, join, group-by and order-by columns into each access's
  // referenced set, then deduplicate.
  for (TableAccess& a : spec_.accesses) {
    for (const Predicate& p : a.predicates) {
      a.referenced_columns.push_back(p.column.column);
    }
  }
  for (const JoinEdge& j : spec_.joins) {
    spec_.accesses[j.left_access].referenced_columns.push_back(j.left_column);
    spec_.accesses[j.right_access].referenced_columns.push_back(
        j.right_column);
  }
  auto fold_refs = [&](const std::vector<ColumnRef>& refs) {
    for (const ColumnRef& r : refs) {
      for (TableAccess& a : spec_.accesses) {
        if (a.table == r.table) {
          a.referenced_columns.push_back(r.column);
          break;
        }
      }
    }
  };
  fold_refs(spec_.group_by);
  fold_refs(spec_.order_by);
  for (TableAccess& a : spec_.accesses) {
    std::sort(a.referenced_columns.begin(), a.referenced_columns.end());
    a.referenced_columns.erase(
        std::unique(a.referenced_columns.begin(), a.referenced_columns.end()),
        a.referenced_columns.end());
  }
}

Query QueryBuilder::BuildSelect(TemplateId template_id) {
  FoldReferencedColumns();
  Query q;
  q.template_id = template_id;
  q.kind = StatementKind::kSelect;
  q.select = std::move(spec_);
  // Optimization overhead grows with join count (§5.2's non-constant
  // optimization times).
  q.optimize_overhead = 1.0 + 0.35 * static_cast<double>(q.select.joins.size());
  spec_ = SelectSpec();
  return q;
}

Query QueryBuilder::BuildDml(TemplateId template_id, StatementKind kind,
                             TableId table, std::vector<ColumnId> set_columns,
                             double selectivity) {
  PDX_CHECK(kind != StatementKind::kSelect);
  FoldReferencedColumns();
  Query q;
  q.template_id = template_id;
  q.kind = kind;
  q.select = std::move(spec_);
  spec_ = SelectSpec();

  UpdateSpec u;
  u.table = table;
  u.kind = kind;
  u.set_columns = std::move(set_columns);
  if (selectivity > 0.0) {
    u.selectivity = selectivity;
  } else if (kind == StatementKind::kInsert) {
    u.selectivity = 1.0 / static_cast<double>(
                              std::max<uint64_t>(1, schema_.table(table).row_count));
  } else {
    // Derive from the WHERE clause of the SELECT part.
    double sel = 1.0;
    for (const TableAccess& a : q.select.accesses) {
      if (a.table == table) sel = a.CombinedSelectivity();
    }
    u.selectivity = std::clamp(sel, 1e-12, 1.0);
  }
  q.update = std::move(u);
  q.optimize_overhead = 1.0;
  return q;
}

}  // namespace pdx
