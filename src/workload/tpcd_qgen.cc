#include "workload/tpcd_qgen.h"

#include <functional>

#include "common/zipf.h"
#include "workload/query_builder.h"
#include "workload/sql_text.h"

namespace pdx {

namespace {

// Shorthand used throughout the builders below.
using QB = QueryBuilder;

}  // namespace

std::vector<TpcdTemplateSpec> TpcdTemplateBank(bool include_point_lookups) {
  std::vector<TpcdTemplateSpec> specs;

  // T01 (TPC-H Q1 flavour): pricing summary — big lineitem range scan with
  // grouping; always expensive, cost varies with the shipdate cutoff.
  specs.push_back({"pricing_summary", [](QB& b, TemplateId t) {
    uint32_t li = b.AddAccess(kLineitem);
    b.AddSampledRange(li, b.Col(li, "l_shipdate"), 0.85, 1.0);
    b.GroupBy(li, b.Col(li, "l_returnflag"));
    b.GroupBy(li, b.Col(li, "l_linestatus"));
    b.Refer(li, {b.Col(li, "l_quantity"), b.Col(li, "l_extendedprice"),
                 b.Col(li, "l_discount"), b.Col(li, "l_tax")});
    b.SetAggregates(8);
    return b.BuildSelect(t);
  }});

  // T02 (Q6 flavour): forecasting revenue change — selective lineitem scan.
  specs.push_back({"revenue_forecast", [](QB& b, TemplateId t) {
    uint32_t li = b.AddAccess(kLineitem);
    b.AddSampledRange(li, b.Col(li, "l_shipdate"), 0.10, 0.20);
    b.AddSampledEq(li, b.Col(li, "l_discount"));
    b.AddSampledRange(li, b.Col(li, "l_quantity"), 0.3, 0.6);
    b.Refer(li, {b.Col(li, "l_extendedprice")});
    b.SetAggregates(1);
    return b.BuildSelect(t);
  }});

  // T03 (Q3 flavour): shipping priority — customer x orders x lineitem.
  specs.push_back({"shipping_priority", [](QB& b, TemplateId t) {
    uint32_t c = b.AddAccess(kCustomer);
    uint32_t o = b.AddAccess(kOrders);
    uint32_t li = b.AddAccess(kLineitem);
    b.AddSampledEq(c, b.Col(c, "c_mktsegment"));
    b.AddSampledRange(o, b.Col(o, "o_orderdate"), 0.3, 0.6);
    b.AddJoin(c, o, b.Col(c, "c_custkey"), b.Col(o, "o_custkey"));
    b.AddJoin(o, li, b.Col(o, "o_orderkey"), b.Col(li, "l_orderkey"));
    b.GroupBy(li, b.Col(li, "l_orderkey"));
    b.OrderBy(o, b.Col(o, "o_orderdate"));
    b.Refer(li, {b.Col(li, "l_extendedprice"), b.Col(li, "l_discount")});
    b.SetAggregates(1);
    return b.BuildSelect(t);
  }});

  // T04 (Q4 flavour): order priority checking.
  specs.push_back({"order_priority", [](QB& b, TemplateId t) {
    uint32_t o = b.AddAccess(kOrders);
    uint32_t li = b.AddAccess(kLineitem);
    b.AddSampledRange(o, b.Col(o, "o_orderdate"), 0.04, 0.08);
    b.AddJoin(o, li, b.Col(o, "o_orderkey"), b.Col(li, "l_orderkey"));
    b.GroupBy(o, b.Col(o, "o_orderpriority"));
    b.SetAggregates(1);
    return b.BuildSelect(t);
  }});

  // T05 (Q5 flavour): local supplier volume — 6-way join.
  specs.push_back({"local_supplier_volume", [](QB& b, TemplateId t) {
    uint32_t r = b.AddAccess(kRegion);
    uint32_t n = b.AddAccess(kNation);
    uint32_t su = b.AddAccess(kSupplier);
    uint32_t c = b.AddAccess(kCustomer);
    uint32_t o = b.AddAccess(kOrders);
    uint32_t li = b.AddAccess(kLineitem);
    b.AddSampledEq(r, b.Col(r, "r_name"));
    b.AddSampledRange(o, b.Col(o, "o_orderdate"), 0.15, 0.25);
    b.AddJoin(r, n, b.Col(r, "r_regionkey"), b.Col(n, "n_regionkey"));
    b.AddJoin(n, c, b.Col(n, "n_nationkey"), b.Col(c, "c_nationkey"));
    b.AddJoin(c, o, b.Col(c, "c_custkey"), b.Col(o, "o_custkey"));
    b.AddJoin(o, li, b.Col(o, "o_orderkey"), b.Col(li, "l_orderkey"));
    b.AddJoin(li, su, b.Col(li, "l_suppkey"), b.Col(su, "s_suppkey"));
    b.GroupBy(n, b.Col(n, "n_name"));
    b.Refer(li, {b.Col(li, "l_extendedprice"), b.Col(li, "l_discount")});
    b.SetAggregates(1);
    return b.BuildSelect(t);
  }});

  // T06 (Q10 flavour): returned item reporting.
  specs.push_back({"returned_items", [](QB& b, TemplateId t) {
    uint32_t c = b.AddAccess(kCustomer);
    uint32_t o = b.AddAccess(kOrders);
    uint32_t li = b.AddAccess(kLineitem);
    uint32_t n = b.AddAccess(kNation);
    b.AddSampledRange(o, b.Col(o, "o_orderdate"), 0.06, 0.10);
    b.AddSampledEq(li, b.Col(li, "l_returnflag"));
    b.AddJoin(c, o, b.Col(c, "c_custkey"), b.Col(o, "o_custkey"));
    b.AddJoin(o, li, b.Col(o, "o_orderkey"), b.Col(li, "l_orderkey"));
    b.AddJoin(c, n, b.Col(c, "c_nationkey"), b.Col(n, "n_nationkey"));
    b.GroupBy(c, b.Col(c, "c_custkey"));
    b.Refer(li, {b.Col(li, "l_extendedprice"), b.Col(li, "l_discount")});
    b.SetAggregates(1);
    return b.BuildSelect(t);
  }});

  // T07 (Q11 flavour): important stock identification.
  specs.push_back({"important_stock", [](QB& b, TemplateId t) {
    uint32_t ps = b.AddAccess(kPartsupp);
    uint32_t su = b.AddAccess(kSupplier);
    uint32_t n = b.AddAccess(kNation);
    b.AddSampledEq(n, b.Col(n, "n_name"));
    b.AddJoin(ps, su, b.Col(ps, "ps_suppkey"), b.Col(su, "s_suppkey"));
    b.AddJoin(su, n, b.Col(su, "s_nationkey"), b.Col(n, "n_nationkey"));
    b.GroupBy(ps, b.Col(ps, "ps_partkey"));
    b.Refer(ps, {b.Col(ps, "ps_supplycost"), b.Col(ps, "ps_availqty")});
    b.SetAggregates(1);
    return b.BuildSelect(t);
  }});

  // T08 (Q12 flavour): shipping modes and order priority.
  specs.push_back({"shipping_modes", [](QB& b, TemplateId t) {
    uint32_t o = b.AddAccess(kOrders);
    uint32_t li = b.AddAccess(kLineitem);
    b.AddSampledEq(li, b.Col(li, "l_shipmode"));
    b.AddSampledRange(li, b.Col(li, "l_receiptdate"), 0.12, 0.20);
    b.AddJoin(o, li, b.Col(o, "o_orderkey"), b.Col(li, "l_orderkey"));
    b.GroupBy(li, b.Col(li, "l_shipmode"));
    b.Refer(o, {b.Col(o, "o_orderpriority")});
    b.SetAggregates(2);
    return b.BuildSelect(t);
  }});

  // T09 (Q14 flavour): promotion effect.
  specs.push_back({"promotion_effect", [](QB& b, TemplateId t) {
    uint32_t li = b.AddAccess(kLineitem);
    uint32_t p = b.AddAccess(kPart);
    b.AddSampledRange(li, b.Col(li, "l_shipdate"), 0.025, 0.045);
    b.AddJoin(li, p, b.Col(li, "l_partkey"), b.Col(p, "p_partkey"));
    b.Refer(p, {b.Col(p, "p_type")});
    b.Refer(li, {b.Col(li, "l_extendedprice"), b.Col(li, "l_discount")});
    b.SetAggregates(1);
    return b.BuildSelect(t);
  }});

  // T10 (Q16 flavour): parts/supplier relationship.
  specs.push_back({"parts_supplier", [](QB& b, TemplateId t) {
    uint32_t p = b.AddAccess(kPart);
    uint32_t ps = b.AddAccess(kPartsupp);
    b.AddSampledEq(p, b.Col(p, "p_brand"));
    b.AddSampledEq(p, b.Col(p, "p_size"));
    b.AddJoin(p, ps, b.Col(p, "p_partkey"), b.Col(ps, "ps_partkey"));
    b.GroupBy(p, b.Col(p, "p_type"));
    b.SetAggregates(1);
    return b.BuildSelect(t);
  }});

  // T11 (Q17 flavour): small-quantity-order revenue.
  specs.push_back({"small_quantity_revenue", [](QB& b, TemplateId t) {
    uint32_t li = b.AddAccess(kLineitem);
    uint32_t p = b.AddAccess(kPart);
    b.AddSampledEq(p, b.Col(p, "p_brand"));
    b.AddSampledEq(p, b.Col(p, "p_container"));
    b.AddSampledRange(li, b.Col(li, "l_quantity"), 0.02, 0.06);
    b.AddJoin(p, li, b.Col(p, "p_partkey"), b.Col(li, "l_partkey"));
    b.Refer(li, {b.Col(li, "l_extendedprice")});
    b.SetAggregates(1);
    return b.BuildSelect(t);
  }});

  // T12 (Q18 flavour): large-volume customers.
  specs.push_back({"large_volume_customers", [](QB& b, TemplateId t) {
    uint32_t c = b.AddAccess(kCustomer);
    uint32_t o = b.AddAccess(kOrders);
    uint32_t li = b.AddAccess(kLineitem);
    b.AddSampledRange(o, b.Col(o, "o_totalprice"), 0.01, 0.03);
    b.AddJoin(c, o, b.Col(c, "c_custkey"), b.Col(o, "o_custkey"));
    b.AddJoin(o, li, b.Col(o, "o_orderkey"), b.Col(li, "l_orderkey"));
    b.GroupBy(c, b.Col(c, "c_name"));
    b.GroupBy(o, b.Col(o, "o_orderkey"));
    b.Refer(li, {b.Col(li, "l_quantity")});
    b.SetAggregates(1);
    return b.BuildSelect(t);
  }});

  // T13 (Q19 flavour): discounted revenue (part lookup with several eq
  // predicates and a quantity range).
  specs.push_back({"discounted_revenue", [](QB& b, TemplateId t) {
    uint32_t li = b.AddAccess(kLineitem);
    uint32_t p = b.AddAccess(kPart);
    b.AddSampledEq(p, b.Col(p, "p_brand"));
    b.AddSampledEq(p, b.Col(p, "p_container"));
    b.AddSampledRange(li, b.Col(li, "l_quantity"), 0.1, 0.3);
    b.AddSampledEq(li, b.Col(li, "l_shipinstruct"));
    b.AddJoin(p, li, b.Col(p, "p_partkey"), b.Col(li, "l_partkey"));
    b.Refer(li, {b.Col(li, "l_extendedprice"), b.Col(li, "l_discount")});
    b.SetAggregates(1);
    return b.BuildSelect(t);
  }});

  // T14 (Q21 flavour): suppliers who kept orders waiting.
  specs.push_back({"waiting_suppliers", [](QB& b, TemplateId t) {
    uint32_t su = b.AddAccess(kSupplier);
    uint32_t li = b.AddAccess(kLineitem);
    uint32_t o = b.AddAccess(kOrders);
    uint32_t n = b.AddAccess(kNation);
    b.AddSampledEq(n, b.Col(n, "n_name"));
    b.AddSampledEq(o, b.Col(o, "o_orderstatus"));
    b.AddJoin(su, li, b.Col(su, "s_suppkey"), b.Col(li, "l_suppkey"));
    b.AddJoin(li, o, b.Col(li, "l_orderkey"), b.Col(o, "o_orderkey"));
    b.AddJoin(su, n, b.Col(su, "s_nationkey"), b.Col(n, "n_nationkey"));
    b.GroupBy(su, b.Col(su, "s_name"));
    b.SetAggregates(1);
    return b.BuildSelect(t);
  }});

  // T15 (Q2 flavour): minimum-cost supplier.
  specs.push_back({"min_cost_supplier", [](QB& b, TemplateId t) {
    uint32_t p = b.AddAccess(kPart);
    uint32_t ps = b.AddAccess(kPartsupp);
    uint32_t su = b.AddAccess(kSupplier);
    uint32_t n = b.AddAccess(kNation);
    uint32_t r = b.AddAccess(kRegion);
    b.AddSampledEq(p, b.Col(p, "p_size"));
    b.AddSampledEq(p, b.Col(p, "p_type"));
    b.AddSampledEq(r, b.Col(r, "r_name"));
    b.AddJoin(p, ps, b.Col(p, "p_partkey"), b.Col(ps, "ps_partkey"));
    b.AddJoin(ps, su, b.Col(ps, "ps_suppkey"), b.Col(su, "s_suppkey"));
    b.AddJoin(su, n, b.Col(su, "s_nationkey"), b.Col(n, "n_nationkey"));
    b.AddJoin(n, r, b.Col(n, "n_regionkey"), b.Col(r, "r_regionkey"));
    b.OrderBy(su, b.Col(su, "s_acctbal"));
    b.Refer(su, {b.Col(su, "s_name")});
    b.Refer(ps, {b.Col(ps, "ps_supplycost")});
    return b.BuildSelect(t);
  }});

  // T16 (Q9 flavour): product-type profit measure — 5-way join over the
  // biggest tables; the most expensive template.
  specs.push_back({"product_profit", [](QB& b, TemplateId t) {
    uint32_t p = b.AddAccess(kPart);
    uint32_t li = b.AddAccess(kLineitem);
    uint32_t ps = b.AddAccess(kPartsupp);
    uint32_t o = b.AddAccess(kOrders);
    uint32_t su = b.AddAccess(kSupplier);
    b.AddUnsargable(p, b.Col(p, "p_name"), 0.05);
    b.AddJoin(p, li, b.Col(p, "p_partkey"), b.Col(li, "l_partkey"));
    b.AddJoin(li, ps, b.Col(li, "l_partkey"), b.Col(ps, "ps_partkey"));
    b.AddJoin(li, o, b.Col(li, "l_orderkey"), b.Col(o, "o_orderkey"));
    b.AddJoin(li, su, b.Col(li, "l_suppkey"), b.Col(su, "s_suppkey"));
    b.GroupBy(o, b.Col(o, "o_orderdate"));
    b.Refer(li, {b.Col(li, "l_extendedprice"), b.Col(li, "l_discount")});
    b.Refer(ps, {b.Col(ps, "ps_supplycost")});
    b.SetAggregates(1);
    return b.BuildSelect(t);
  }});

  // T17 (Q13 flavour): customer order distribution.
  specs.push_back({"customer_distribution", [](QB& b, TemplateId t) {
    uint32_t c = b.AddAccess(kCustomer);
    uint32_t o = b.AddAccess(kOrders);
    b.AddSampledEq(o, b.Col(o, "o_orderpriority"));
    b.AddJoin(c, o, b.Col(c, "c_custkey"), b.Col(o, "o_custkey"));
    b.GroupBy(c, b.Col(c, "c_custkey"));
    b.SetAggregates(1);
    return b.BuildSelect(t);
  }});

  // T18 (Q15 flavour): top supplier by revenue over a date slice.
  specs.push_back({"top_supplier", [](QB& b, TemplateId t) {
    uint32_t li = b.AddAccess(kLineitem);
    uint32_t su = b.AddAccess(kSupplier);
    b.AddSampledRange(li, b.Col(li, "l_shipdate"), 0.06, 0.09);
    b.AddJoin(li, su, b.Col(li, "l_suppkey"), b.Col(su, "s_suppkey"));
    b.GroupBy(su, b.Col(su, "s_suppkey"));
    b.Refer(li, {b.Col(li, "l_extendedprice"), b.Col(li, "l_discount")});
    b.SetAggregates(1);
    return b.BuildSelect(t);
  }});

  // T19 (Q20 flavour): potential part promotion.
  specs.push_back({"part_promotion", [](QB& b, TemplateId t) {
    uint32_t su = b.AddAccess(kSupplier);
    uint32_t n = b.AddAccess(kNation);
    uint32_t ps = b.AddAccess(kPartsupp);
    uint32_t p = b.AddAccess(kPart);
    b.AddSampledEq(n, b.Col(n, "n_name"));
    b.AddUnsargable(p, b.Col(p, "p_name"), 0.01);
    b.AddJoin(su, n, b.Col(su, "s_nationkey"), b.Col(n, "n_nationkey"));
    b.AddJoin(su, ps, b.Col(su, "s_suppkey"), b.Col(ps, "ps_suppkey"));
    b.AddJoin(ps, p, b.Col(ps, "ps_partkey"), b.Col(p, "p_partkey"));
    b.Refer(su, {b.Col(su, "s_name"), b.Col(su, "s_address")});
    return b.BuildSelect(t);
  }});

  // T20 (Q22 flavour): global sales opportunity — customer scan with an
  // unsargable phone-prefix filter.
  specs.push_back({"sales_opportunity", [](QB& b, TemplateId t) {
    uint32_t c = b.AddAccess(kCustomer);
    b.AddUnsargable(c, b.Col(c, "c_phone"), 0.08);
    b.AddSampledRange(c, b.Col(c, "c_acctbal"), 0.4, 0.6);
    b.GroupBy(c, b.Col(c, "c_mktsegment"));
    b.SetAggregates(2);
    return b.BuildSelect(t);
  }});

  // T21 (Q7 flavour): volume shipping between two nations.
  specs.push_back({"volume_shipping", [](QB& b, TemplateId t) {
    uint32_t su = b.AddAccess(kSupplier);
    uint32_t li = b.AddAccess(kLineitem);
    uint32_t o = b.AddAccess(kOrders);
    uint32_t c = b.AddAccess(kCustomer);
    uint32_t n = b.AddAccess(kNation);
    b.AddSampledEq(n, b.Col(n, "n_name"));
    b.AddSampledRange(li, b.Col(li, "l_shipdate"), 0.25, 0.35);
    b.AddJoin(su, li, b.Col(su, "s_suppkey"), b.Col(li, "l_suppkey"));
    b.AddJoin(li, o, b.Col(li, "l_orderkey"), b.Col(o, "o_orderkey"));
    b.AddJoin(o, c, b.Col(o, "o_custkey"), b.Col(c, "c_custkey"));
    b.AddJoin(su, n, b.Col(su, "s_nationkey"), b.Col(n, "n_nationkey"));
    b.GroupBy(n, b.Col(n, "n_name"));
    b.Refer(li, {b.Col(li, "l_extendedprice"), b.Col(li, "l_discount")});
    b.SetAggregates(1);
    return b.BuildSelect(t);
  }});

  // T22 (Q8 flavour): national market share.
  specs.push_back({"market_share", [](QB& b, TemplateId t) {
    uint32_t p = b.AddAccess(kPart);
    uint32_t li = b.AddAccess(kLineitem);
    uint32_t o = b.AddAccess(kOrders);
    uint32_t c = b.AddAccess(kCustomer);
    uint32_t n = b.AddAccess(kNation);
    uint32_t r = b.AddAccess(kRegion);
    b.AddSampledEq(p, b.Col(p, "p_type"));
    b.AddSampledEq(r, b.Col(r, "r_name"));
    b.AddSampledRange(o, b.Col(o, "o_orderdate"), 0.3, 0.4);
    b.AddJoin(p, li, b.Col(p, "p_partkey"), b.Col(li, "l_partkey"));
    b.AddJoin(li, o, b.Col(li, "l_orderkey"), b.Col(o, "o_orderkey"));
    b.AddJoin(o, c, b.Col(o, "o_custkey"), b.Col(c, "c_custkey"));
    b.AddJoin(c, n, b.Col(c, "c_nationkey"), b.Col(n, "n_nationkey"));
    b.AddJoin(n, r, b.Col(n, "n_regionkey"), b.Col(r, "r_regionkey"));
    b.GroupBy(o, b.Col(o, "o_orderdate"));
    b.Refer(li, {b.Col(li, "l_extendedprice"), b.Col(li, "l_discount")});
    b.SetAggregates(1);
    return b.BuildSelect(t);
  }});

  if (include_point_lookups) {
    // T23: single-value customer lookup — the "single-value lookups" the
    // paper contrasts against multi-join queries in §4.2.
    specs.push_back({"customer_lookup", [](QB& b, TemplateId t) {
      uint32_t c = b.AddAccess(kCustomer);
      b.AddSampledEq(c, b.Col(c, "c_custkey"));
      b.Refer(c, {b.Col(c, "c_name"), b.Col(c, "c_acctbal"),
                  b.Col(c, "c_address")});
      return b.BuildSelect(t);
    }});

    // T24: order lookup with its lineitems (cheap 2-way keyed join).
    specs.push_back({"order_lookup", [](QB& b, TemplateId t) {
      uint32_t o = b.AddAccess(kOrders);
      uint32_t li = b.AddAccess(kLineitem);
      b.AddSampledEq(o, b.Col(o, "o_orderkey"));
      b.AddJoin(o, li, b.Col(o, "o_orderkey"), b.Col(li, "l_orderkey"));
      b.Refer(li, {b.Col(li, "l_quantity"), b.Col(li, "l_extendedprice")});
      return b.BuildSelect(t);
    }});
  }

  return specs;
}

std::vector<TpcdTemplateSpec> TpcdDmlTemplateBank() {
  std::vector<TpcdTemplateSpec> specs;

  // D01: order entry — single-row INSERT into orders.
  specs.push_back({"insert_order", [](QB& b, TemplateId t) {
    return b.BuildDml(t, StatementKind::kInsert, kOrders,
                      {0, 1, 2, 3, 4, 5, 6, 7});
  }, StatementKind::kInsert});

  // D02: line-item entry — single-row INSERT into lineitem.
  specs.push_back({"insert_lineitem", [](QB& b, TemplateId t) {
    return b.BuildDml(t, StatementKind::kInsert, kLineitem,
                      {0, 1, 2, 3, 4, 5, 6, 7});
  }, StatementKind::kInsert});

  // D03: stock movement — UPDATE partsupp availability for one part.
  specs.push_back({"update_stock", [](QB& b, TemplateId t) {
    uint32_t ps = b.AddAccess(kPartsupp);
    b.AddSampledEq(ps, b.Col(ps, "ps_partkey"));
    return b.BuildDml(t, StatementKind::kUpdate, kPartsupp,
                      {b.Col(ps, "ps_availqty")});
  }, StatementKind::kUpdate});

  // D04: payment posting — UPDATE one customer's balance.
  specs.push_back({"update_balance", [](QB& b, TemplateId t) {
    uint32_t c = b.AddAccess(kCustomer);
    b.AddSampledEq(c, b.Col(c, "c_custkey"));
    return b.BuildDml(t, StatementKind::kUpdate, kCustomer,
                      {b.Col(c, "c_acctbal")});
  }, StatementKind::kUpdate});

  // D05: order purge — DELETE an old order-date slice.
  specs.push_back({"purge_orders", [](QB& b, TemplateId t) {
    uint32_t o = b.AddAccess(kOrders);
    b.AddSampledRange(o, b.Col(o, "o_orderdate"), 0.005, 0.02);
    return b.BuildDml(t, StatementKind::kDelete, kOrders, {});
  }, StatementKind::kDelete});

  return specs;
}

Workload GenerateTpcdWorkload(const Schema& schema,
                              const TpcdWorkloadOptions& options) {
  PDX_CHECK(schema.name() == "tpcd");
  PDX_CHECK(options.num_queries > 0);
  Rng rng(options.seed);
  Workload wl(&schema);

  std::vector<TpcdTemplateSpec> specs =
      TpcdTemplateBank(options.include_point_lookups);

  // Register templates; table list and signature come from a probe instance.
  for (size_t i = 0; i < specs.size(); ++i) {
    Rng probe_rng(options.seed ^ 0xABCDEF);
    QB probe_builder(schema, &probe_rng);
    Query probe = specs[i].build(probe_builder, static_cast<TemplateId>(i));
    QueryTemplate tmpl;
    tmpl.name = specs[i].name;
    tmpl.kind = StatementKind::kSelect;
    for (const TableAccess& a : probe.select.accesses) {
      tmpl.tables.push_back(a.table);
    }
    tmpl.signature = SqlTemplateSignature(RenderSql(schema, probe));
    TemplateId tid = wl.AddTemplate(std::move(tmpl));
    PDX_CHECK(tid == static_cast<TemplateId>(i));
  }

  // Instantiate queries. QGEN spreads instances evenly across templates;
  // template_skew > 0 switches to Zipf-weighted template popularity.
  std::optional<ZipfDistribution> skewed;
  if (options.template_skew > 0.0) {
    skewed.emplace(specs.size(), options.template_skew);
  }
  for (uint32_t i = 0; i < options.num_queries; ++i) {
    size_t ti = skewed ? skewed->Sample(&rng) : (i % specs.size());
    QB b(schema, &rng);
    Query q = specs[ti].build(b, static_cast<TemplateId>(ti));
    wl.AddQuery(std::move(q));
  }

  PDX_CHECK(wl.Validate().ok());
  return wl;
}

}  // namespace pdx
