#include "workload/crm_trace.h"

#include <algorithm>
#include <functional>
#include <optional>

#include "common/string_util.h"
#include "common/zipf.h"
#include "workload/query_builder.h"
#include "workload/sql_text.h"

namespace pdx {

namespace {

// Columns of a table bucketed by archetype (see crm_schema.cc naming).
struct TableShape {
  TableId table;
  ColumnId id_column = kInvalidColumnId;
  std::vector<ColumnId> fk_columns;
  std::vector<ColumnId> status_columns;
  std::vector<ColumnId> date_columns;
  std::vector<ColumnId> amount_columns;
  std::vector<ColumnId> text_columns;
};

TableShape ShapeOf(const Schema& schema, TableId tid) {
  TableShape shape;
  shape.table = tid;
  const Table& t = schema.table(tid);
  for (size_t c = 0; c < t.columns.size(); ++c) {
    const std::string& name = t.columns[c].name;
    ColumnId cid = static_cast<ColumnId>(c);
    if (name.ends_with("_id") && c == 0) {
      shape.id_column = cid;
    } else if (name.ends_with("_fk")) {
      shape.fk_columns.push_back(cid);
    } else if (name.ends_with("_st")) {
      shape.status_columns.push_back(cid);
    } else if (name.ends_with("_dt")) {
      shape.date_columns.push_back(cid);
    } else if (name.ends_with("_amt")) {
      shape.amount_columns.push_back(cid);
    } else {
      shape.text_columns.push_back(cid);
    }
  }
  return shape;
}

// A synthesized template: statement kind plus an instantiation function.
struct CrmTemplate {
  std::string name;
  StatementKind kind;
  std::vector<TableId> tables;
  std::function<Query(const Schema&, Rng*, TemplateId)> build;
};

// Picks a column id or falls back to the row-id column.
ColumnId PickOr(const std::vector<ColumnId>& cols, Rng* rng, ColumnId fallback) {
  if (cols.empty()) return fallback;
  return cols[rng->NextBounded(cols.size())];
}

}  // namespace

Workload GenerateCrmTrace(const Schema& schema, const CrmTraceOptions& options) {
  PDX_CHECK(schema.name() == "crm");
  PDX_CHECK(options.num_templates >= 8);
  PDX_CHECK(options.num_statements > 0);

  Rng gen_rng(options.seed);
  Workload wl(&schema);

  // Hot tables (the schema builder sorts tables by size, so low ids are
  // the large transactional tables) get most of the templates; reference
  // tables appear mostly as join partners.
  std::vector<TableShape> shapes;
  shapes.reserve(schema.num_tables());
  for (TableId t = 0; t < schema.num_tables(); ++t) {
    shapes.push_back(ShapeOf(schema, t));
  }
  const size_t num_hot = std::max<size_t>(8, schema.num_tables() / 8);

  std::vector<CrmTemplate> templates;
  templates.reserve(options.num_templates);
  const uint32_t num_dml = static_cast<uint32_t>(
      options.dml_template_fraction * static_cast<double>(options.num_templates));

  auto hot_shape = [&](Rng* rng) -> const TableShape& {
    // Bias toward the hottest tables.
    size_t idx = static_cast<size_t>(rng->NextBounded(num_hot));
    if (rng->NextBernoulli(0.5)) idx = idx / 2;
    return shapes[idx];
  };

  // --- SELECT templates -------------------------------------------------
  const uint32_t num_select = options.num_templates - num_dml;
  for (uint32_t i = 0; i < num_select; ++i) {
    const TableShape& hs = hot_shape(&gen_rng);
    switch (gen_rng.NextBounded(4)) {
      case 0: {
        // Point lookup by primary id.
        TableId tab = hs.table;
        ColumnId id_col = hs.id_column;
        templates.push_back(
            {StringFormat("sel_point_%u", i), StatementKind::kSelect,
             {tab},
             [tab, id_col](const Schema& s, Rng* rng, TemplateId t) {
               QueryBuilder b(s, rng);
               uint32_t a = b.AddAccess(tab);
               b.AddSampledEq(a, id_col);
               const Table& tbl = s.table(tab);
               for (size_t c = 0; c < std::min<size_t>(4, tbl.columns.size()); ++c) {
                 b.Refer(a, {static_cast<ColumnId>(c)});
               }
               return b.BuildSelect(t);
             }});
        break;
      }
      case 1: {
        // Secondary lookup: status/fk equality + optional date range.
        TableId tab = hs.table;
        ColumnId eq_col = PickOr(hs.status_columns, &gen_rng,
                                 PickOr(hs.fk_columns, &gen_rng, hs.id_column));
        std::optional<ColumnId> range_col;
        if (!hs.date_columns.empty() && gen_rng.NextBernoulli(0.6)) {
          range_col = hs.date_columns[gen_rng.NextBounded(hs.date_columns.size())];
        }
        templates.push_back(
            {StringFormat("sel_filter_%u", i), StatementKind::kSelect,
             {tab},
             [tab, eq_col, range_col](const Schema& s, Rng* rng, TemplateId t) {
               QueryBuilder b(s, rng);
               uint32_t a = b.AddAccess(tab);
               b.AddSampledEq(a, eq_col);
               if (range_col) b.AddSampledRange(a, *range_col, 0.05, 0.4);
               b.Refer(a, {eq_col});
               return b.BuildSelect(t);
             }});
        break;
      }
      case 2: {
        // Two-way join: hot table fk -> smaller table id.
        TableId left = hs.table;
        ColumnId fk = PickOr(hs.fk_columns, &gen_rng, hs.id_column);
        // Join partner: a smaller table (higher id = smaller).
        size_t partner_idx = num_hot + gen_rng.NextBounded(shapes.size() - num_hot);
        const TableShape& ps = shapes[partner_idx];
        TableId right = ps.table;
        ColumnId right_id = ps.id_column;
        ColumnId filter = PickOr(hs.status_columns, &gen_rng, fk);
        templates.push_back(
            {StringFormat("sel_join2_%u", i), StatementKind::kSelect,
             {left, right},
             [left, right, fk, right_id, filter](const Schema& s, Rng* rng,
                                                 TemplateId t) {
               QueryBuilder b(s, rng);
               uint32_t a0 = b.AddAccess(left);
               uint32_t a1 = b.AddAccess(right);
               b.AddSampledEq(a0, filter);
               b.AddJoin(a0, a1, fk, right_id);
               b.Refer(a1, {right_id});
               return b.BuildSelect(t);
             }});
        break;
      }
      default: {
        // Reporting aggregate: date-range scan with group-by, sometimes a
        // second join level.
        TableId tab = hs.table;
        ColumnId date_col = PickOr(hs.date_columns, &gen_rng, hs.id_column);
        ColumnId group_col = PickOr(hs.status_columns, &gen_rng,
                                    PickOr(hs.fk_columns, &gen_rng, hs.id_column));
        ColumnId agg_col = PickOr(hs.amount_columns, &gen_rng, hs.id_column);
        templates.push_back(
            {StringFormat("sel_report_%u", i), StatementKind::kSelect,
             {tab},
             [tab, date_col, group_col, agg_col](const Schema& s, Rng* rng,
                                                 TemplateId t) {
               QueryBuilder b(s, rng);
               uint32_t a = b.AddAccess(tab);
               b.AddSampledRange(a, date_col, 0.1, 0.5);
               b.GroupBy(a, group_col);
               b.Refer(a, {agg_col});
               b.SetAggregates(2);
               return b.BuildSelect(t);
             }});
        break;
      }
    }
  }

  // --- DML templates ------------------------------------------------------
  for (uint32_t i = 0; i < num_dml; ++i) {
    const TableShape& hs = hot_shape(&gen_rng);
    TableId tab = hs.table;
    const Table& tbl = schema.table(tab);
    switch (gen_rng.NextBounded(3)) {
      case 0: {
        // Single-row INSERT.
        std::vector<ColumnId> cols;
        for (size_t c = 0; c < tbl.columns.size(); ++c) {
          cols.push_back(static_cast<ColumnId>(c));
        }
        templates.push_back(
            {StringFormat("ins_%u", i), StatementKind::kInsert,
             {tab},
             [tab, cols](const Schema& s, Rng* rng, TemplateId t) {
               QueryBuilder b(s, rng);
               return b.BuildDml(t, StatementKind::kInsert, tab, cols);
             }});
        break;
      }
      case 1: {
        // UPDATE by id or by status; selectivity varies with the bound value.
        ColumnId where_col = gen_rng.NextBernoulli(0.5)
                                 ? hs.id_column
                                 : PickOr(hs.status_columns, &gen_rng, hs.id_column);
        std::vector<ColumnId> set_cols;
        set_cols.push_back(PickOr(hs.amount_columns, &gen_rng,
                                  PickOr(hs.status_columns, &gen_rng, hs.id_column)));
        templates.push_back(
            {StringFormat("upd_%u", i), StatementKind::kUpdate,
             {tab},
             [tab, where_col, set_cols](const Schema& s, Rng* rng, TemplateId t) {
               QueryBuilder b(s, rng);
               uint32_t a = b.AddAccess(tab);
               b.AddSampledEq(a, where_col);
               return b.BuildDml(t, StatementKind::kUpdate, tab, set_cols);
             }});
        break;
      }
      default: {
        // DELETE by date-range (purge) or by id.
        std::optional<ColumnId> date_col;
        if (!hs.date_columns.empty()) {
          date_col = hs.date_columns[gen_rng.NextBounded(hs.date_columns.size())];
        }
        ColumnId id_col = hs.id_column;
        templates.push_back(
            {StringFormat("del_%u", i), StatementKind::kDelete,
             {tab},
             [tab, date_col, id_col](const Schema& s, Rng* rng, TemplateId t) {
               QueryBuilder b(s, rng);
               uint32_t a = b.AddAccess(tab);
               if (date_col) {
                 b.AddSampledRange(a, *date_col, 0.005, 0.05);
               } else {
                 b.AddSampledEq(a, id_col);
               }
               return b.BuildDml(t, StatementKind::kDelete, tab, {});
             }});
        break;
      }
    }
  }

  // Register all templates.
  for (size_t i = 0; i < templates.size(); ++i) {
    Rng probe_rng(options.seed ^ (0xFEED0000ULL + i));
    Query probe =
        templates[i].build(schema, &probe_rng, static_cast<TemplateId>(i));
    QueryTemplate tmpl;
    tmpl.name = templates[i].name;
    tmpl.kind = templates[i].kind;
    tmpl.tables = templates[i].tables;
    tmpl.signature = SqlTemplateSignature(RenderSql(schema, probe));
    TemplateId tid = wl.AddTemplate(std::move(tmpl));
    PDX_CHECK(tid == static_cast<TemplateId>(i));
  }

  // Emit the trace with Zipf-skewed template popularity, shuffled so the
  // trace interleaves templates like a live capture.
  ZipfDistribution popularity(templates.size(), options.template_skew);
  std::vector<uint32_t> order(options.num_statements);
  for (uint32_t i = 0; i < options.num_statements; ++i) {
    order[i] = static_cast<uint32_t>(popularity.Sample(&gen_rng));
  }
  gen_rng.Shuffle(&order);
  for (uint32_t ti : order) {
    Query q = templates[ti].build(schema, &gen_rng, static_cast<TemplateId>(ti));
    wl.AddQuery(std::move(q));
  }

  PDX_CHECK(wl.Validate().ok());
  return wl;
}

}  // namespace pdx
