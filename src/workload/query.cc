#include "workload/query.h"

#include "common/macros.h"

namespace pdx {

const char* StatementKindName(StatementKind kind) {
  switch (kind) {
    case StatementKind::kSelect:
      return "SELECT";
    case StatementKind::kInsert:
      return "INSERT";
    case StatementKind::kUpdate:
      return "UPDATE";
    case StatementKind::kDelete:
      return "DELETE";
  }
  return "?";
}

double TableAccess::CombinedSelectivity() const {
  double sel = 1.0;
  for (const Predicate& p : predicates) {
    PDX_CHECK(p.selectivity > 0.0 && p.selectivity <= 1.0);
    sel *= p.selectivity;
  }
  return sel;
}

double TableAccess::SargableSelectivityOn(ColumnId column) const {
  double sel = 1.0;
  for (const Predicate& p : predicates) {
    if (p.sargable && p.column.column == column) sel *= p.selectivity;
  }
  return sel;
}

}  // namespace pdx
