// Copyright (c) the pdexplore authors.
// File-backed workload store — the paper's preprocessing structure:
// "For workloads large enough that the query strings do not fit into
// memory, we write all query strings to a database table, which also
// contains the query's ID and template. ... we can obtain a random sample
// of size n from this table by computing a random permutation of the query
// IDs and then (using a single scan) reading the queries corresponding to
// the first n IDs into memory."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/types.h"
#include "common/rng.h"
#include "common/status.h"

namespace pdx {

/// One stored statement.
struct StoredQuery {
  QueryId id = 0;
  TemplateId template_id = 0;
  std::string sql;
};

/// Append-only on-disk store of (id, template, sql-text) records with an
/// in-memory offset index. Sampling materializes only the sampled texts,
/// reading them in a single forward scan regardless of sample order.
class WorkloadStore {
 public:
  WorkloadStore() = default;
  ~WorkloadStore();
  WorkloadStore(WorkloadStore&&) noexcept;
  WorkloadStore& operator=(WorkloadStore&&) noexcept;
  PDX_DISALLOW_COPY(WorkloadStore);

  /// Creates (truncates) a store at `path` for writing.
  static Result<WorkloadStore> Create(const std::string& path);

  /// Opens an existing store, rebuilding the offset index with one scan.
  static Result<WorkloadStore> Open(const std::string& path);

  /// Appends a record. Ids must be appended in increasing order.
  Status Append(QueryId id, TemplateId template_id, std::string_view sql);

  /// Flushes buffered writes to disk.
  Status Flush();

  /// Number of stored records.
  size_t size() const { return index_.size(); }

  /// Reads a single record by id.
  Result<StoredQuery> Read(QueryId id) const;

  /// Uniform random sample of `n` distinct records, loaded with a single
  /// forward scan of the file (offsets are visited in increasing order).
  Result<std::vector<StoredQuery>> SampleQueries(size_t n, Rng* rng) const;

  /// Reads records for an explicit id set (also a single forward scan).
  Result<std::vector<StoredQuery>> ReadMany(std::vector<QueryId> ids) const;

  /// Template id of a record without reading its SQL text.
  Result<TemplateId> TemplateOf(QueryId id) const;

  /// All ids belonging to a template (for stratified sampling by template).
  std::vector<QueryId> IdsOfTemplate(TemplateId template_id) const;

  const std::string& path() const { return path_; }

 private:
  struct Entry {
    uint64_t offset = 0;
    TemplateId template_id = 0;
  };

  Status ParseRecordAt(uint64_t offset, StoredQuery* out) const;

  std::string path_;
  FILE* file_ = nullptr;  // open for append while writing; read otherwise
  bool writable_ = false;
  std::vector<Entry> index_;  // position == QueryId
};

}  // namespace pdx
