#include "workload/scenario.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <vector>

#include "common/string_util.h"
#include "workload/query_builder.h"
#include "workload/sql_text.h"
#include "workload/tpcd_qgen.h"

namespace pdx {

const char* PopularityLawName(PopularityLaw law) {
  switch (law) {
    case PopularityLaw::kUniform: return "uniform";
    case PopularityLaw::kZipfian: return "zipf";
    case PopularityLaw::kSelfSimilar: return "selfsim";
  }
  return "?";
}

PopularitySampler::PopularitySampler(PopularityLaw law, double skew, size_t n)
    : law_(law), skew_(skew), n_(n) {
  PDX_CHECK(n >= 1);
  switch (law_) {
    case PopularityLaw::kUniform:
      break;
    case PopularityLaw::kZipfian:
      PDX_CHECK(skew >= 0.0);
      zipf_.emplace(n, skew);
      break;
    case PopularityLaw::kSelfSimilar:
      PDX_CHECK(skew >= 0.5 && skew < 1.0);
      // CDF F(x) = (x/n)^c with F((1-h)n) = h. c ∈ (0, 1]; c = 1 at
      // h = 0.5 (uniform); c → 0 as h → 1 (all mass on rank 0).
      cdf_exponent_ = skew == 0.5 ? 1.0 : std::log(skew) / std::log1p(-skew);
      break;
  }
}

size_t PopularitySampler::Sample(Rng* rng) const {
  // Every law consumes exactly one uniform variate, so swapping laws at a
  // fixed seed perturbs only the template choices, not later draws.
  switch (law_) {
    case PopularityLaw::kUniform:
      return static_cast<size_t>(rng->NextDouble() * static_cast<double>(n_)) %
             n_;
    case PopularityLaw::kZipfian:
      return zipf_->Sample(rng);
    case PopularityLaw::kSelfSimilar: {
      // Inverse CDF: X = n·u^(1/c), floored; u^(1/c) piles up near 0 for
      // c < 1, so rank 0 is the hottest.
      double u = rng->NextDouble();
      double x = static_cast<double>(n_) * std::pow(u, 1.0 / cdf_exponent_);
      size_t i = static_cast<size_t>(x);
      return i < n_ ? i : n_ - 1;
    }
  }
  return 0;
}

double PopularitySampler::Probability(size_t i) const {
  PDX_CHECK(i < n_);
  switch (law_) {
    case PopularityLaw::kUniform:
      return 1.0 / static_cast<double>(n_);
    case PopularityLaw::kZipfian:
      return zipf_->Probability(i);
    case PopularityLaw::kSelfSimilar: {
      auto cdf = [&](size_t k) {
        return std::pow(static_cast<double>(k) / static_cast<double>(n_),
                        cdf_exponent_);
      };
      return cdf(i + 1) - cdf(i);
    }
  }
  return 0.0;
}

namespace {

bool ParseFullDouble(std::string_view v, double* out) {
  std::string buf(v);
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(buf.c_str(), &end);
  if (buf.empty() || errno != 0 || end != buf.c_str() + buf.size()) {
    return false;
  }
  *out = parsed;
  return true;
}

bool ParseFullU64(std::string_view v, uint64_t* out) {
  std::string buf(v);
  errno = 0;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(buf.c_str(), &end, 10);
  if (buf.empty() || errno != 0 || end != buf.c_str() + buf.size()) {
    return false;
  }
  *out = parsed;
  return true;
}

}  // namespace

Result<ScenarioOptions> ParseScenarioSpec(std::string_view spec) {
  if (spec.empty()) {
    return Status::InvalidArgument(
        "empty scenario spec (expected e.g. 'zipf:0.9,rw:0.8')");
  }
  ScenarioOptions opt;
  bool first = true;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) {
      return Status::InvalidArgument("empty token in scenario spec '" +
                                     std::string(spec) + "'");
    }
    size_t colon = token.find(':');
    std::string_view key = token.substr(0, colon);
    std::string_view value =
        colon == std::string_view::npos ? std::string_view() :
                                          token.substr(colon + 1);
    if (first) {
      first = false;
      if (key == "uniform") {
        if (colon != std::string_view::npos) {
          return Status::InvalidArgument("'uniform' takes no parameter");
        }
        opt.law = PopularityLaw::kUniform;
        opt.skew = 0.0;
        continue;
      }
      if (key == "zipf" || key == "selfsim") {
        double skew;
        if (!ParseFullDouble(value, &skew)) {
          return Status::InvalidArgument("'" + std::string(key) +
                                         "' expects a numeric skew, got '" +
                                         std::string(value) + "'");
        }
        if (key == "zipf") {
          if (skew < 0.0) {
            return Status::InvalidArgument("zipf skew must be >= 0");
          }
          opt.law = PopularityLaw::kZipfian;
        } else {
          if (skew < 0.5 || skew >= 1.0) {
            return Status::InvalidArgument(
                "selfsim skew (the hot fraction h) must be in [0.5, 1)");
          }
          opt.law = PopularityLaw::kSelfSimilar;
        }
        opt.skew = skew;
        continue;
      }
      return Status::InvalidArgument(
          "scenario spec must start with uniform, zipf:T or selfsim:H, "
          "got '" + std::string(token) + "'");
    }
    if (key == "rw") {
      if (!ParseFullDouble(value, &opt.read_fraction) ||
          opt.read_fraction < 0.0 || opt.read_fraction > 1.0) {
        return Status::InvalidArgument(
            "rw expects a read fraction in [0, 1], got '" +
            std::string(value) + "'");
      }
    } else if (key == "disp") {
      if (!ParseFullDouble(value, &opt.dispersion) || opt.dispersion <= 0.0) {
        return Status::InvalidArgument(
            "disp expects a positive dispersion factor, got '" +
            std::string(value) + "'");
      }
    } else if (key == "n") {
      uint64_t n;
      if (!ParseFullU64(value, &n) || n == 0 || n > (1ull << 31)) {
        return Status::InvalidArgument(
            "n expects a positive statement count, got '" +
            std::string(value) + "'");
      }
      opt.num_queries = static_cast<uint32_t>(n);
    } else if (key == "seed") {
      if (!ParseFullU64(value, &opt.seed)) {
        return Status::InvalidArgument("seed expects an unsigned integer, "
                                       "got '" + std::string(value) + "'");
      }
    } else if (key == "lookups") {
      if (value == "0") {
        opt.include_point_lookups = false;
      } else if (value == "1") {
        opt.include_point_lookups = true;
      } else {
        return Status::InvalidArgument("lookups expects 0 or 1, got '" +
                                       std::string(value) + "'");
      }
    } else {
      return Status::InvalidArgument("unknown scenario knob '" +
                                     std::string(key) + "'");
    }
  }
  return opt;
}

std::string FormatScenarioSpec(const ScenarioOptions& options) {
  std::string out = PopularityLawName(options.law);
  if (options.law != PopularityLaw::kUniform) {
    out += ":" + StringFormat("%.6g", options.skew);
  }
  out += StringFormat(",rw:%.6g", options.read_fraction);
  out += StringFormat(",disp:%.6g", options.dispersion);
  out += StringFormat(",n:%u", options.num_queries);
  out += StringFormat(",seed:%llu",
                      static_cast<unsigned long long>(options.seed));
  if (!options.include_point_lookups) out += ",lookups:0";
  return out;
}

Workload GenerateScenarioWorkload(const Schema& schema,
                                  const ScenarioOptions& options) {
  PDX_CHECK(schema.name() == "tpcd");
  PDX_CHECK(options.num_queries > 0);
  PDX_CHECK(options.read_fraction >= 0.0 && options.read_fraction <= 1.0);
  Rng rng(options.seed);
  Workload wl(&schema);

  std::vector<TpcdTemplateSpec> specs =
      TpcdTemplateBank(options.include_point_lookups);
  const size_t num_reads = specs.size();
  const double write_fraction = 1.0 - options.read_fraction;
  if (write_fraction > 0.0) {
    std::vector<TpcdTemplateSpec> dml = TpcdDmlTemplateBank();
    specs.insert(specs.end(), dml.begin(), dml.end());
  }
  const size_t num_dml = specs.size() - num_reads;

  // Register templates; table list and signature come from a probe
  // instance (same idiom as GenerateTpcdWorkload).
  for (size_t i = 0; i < specs.size(); ++i) {
    Rng probe_rng(options.seed ^ 0xABCDEF);
    QueryBuilder probe_builder(schema, &probe_rng);
    Query probe = specs[i].build(probe_builder, static_cast<TemplateId>(i));
    QueryTemplate tmpl;
    tmpl.name = specs[i].name;
    tmpl.kind = specs[i].kind;
    for (const TableAccess& a : probe.select.accesses) {
      tmpl.tables.push_back(a.table);
    }
    if (probe.update.has_value()) {
      bool present = false;
      for (TableId tab : tmpl.tables) present = present || tab == probe.update->table;
      if (!present) tmpl.tables.push_back(probe.update->table);
    }
    tmpl.signature = SqlTemplateSignature(RenderSql(schema, probe));
    TemplateId tid = wl.AddTemplate(std::move(tmpl));
    PDX_CHECK(tid == static_cast<TemplateId>(i));
  }

  // One popularity sampler per statement class, both under the same law:
  // the hottest SELECT template and the hottest DML template each take
  // rank 0 of their class.
  PopularitySampler read_law(options.law, options.skew, num_reads);
  std::optional<PopularitySampler> dml_law;
  if (num_dml > 0) dml_law.emplace(options.law, options.skew, num_dml);

  // Instantiate statements from one sequential RNG stream: (optional)
  // read/write coin, template rank, then the template's parameter draws.
  // Generation is single-threaded by construction, which is what makes
  // the bit-identical-across-thread-counts claim structural.
  for (uint32_t i = 0; i < options.num_queries; ++i) {
    bool is_write =
        write_fraction > 0.0 && rng.NextBernoulli(write_fraction);
    size_t ti = is_write ? num_reads + dml_law->Sample(&rng)
                         : read_law.Sample(&rng);
    QueryBuilder b(schema, &rng, options.dispersion);
    Query q = specs[ti].build(b, static_cast<TemplateId>(ti));
    wl.AddQuery(std::move(q));
  }

  PDX_CHECK(wl.Validate().ok());
  return wl;
}

}  // namespace pdx
