#include "workload/workload.h"

namespace pdx {

QueryId Workload::AddQuery(Query query) {
  PDX_CHECK(query.template_id < templates_.size());
  QueryId id = static_cast<QueryId>(queries_.size());
  query.id = id;
  template_members_[query.template_id].push_back(id);
  queries_.push_back(std::move(query));
  return id;
}

TemplateId Workload::AddTemplate(QueryTemplate tmpl) {
  TemplateId id = static_cast<TemplateId>(templates_.size());
  tmpl.id = id;
  templates_.push_back(std::move(tmpl));
  template_members_.emplace_back();
  return id;
}

const Query& Workload::query(QueryId id) const {
  PDX_CHECK(id < queries_.size());
  return queries_[id];
}

const QueryTemplate& Workload::query_template(TemplateId id) const {
  PDX_CHECK(id < templates_.size());
  return templates_[id];
}

const std::vector<QueryId>& Workload::QueriesOfTemplate(TemplateId id) const {
  PDX_CHECK(id < template_members_.size());
  return template_members_[id];
}

double Workload::DmlFraction() const {
  if (queries_.empty()) return 0.0;
  size_t dml = 0;
  for (const Query& q : queries_) {
    if (q.IsDml()) ++dml;
  }
  return static_cast<double>(dml) / static_cast<double>(queries_.size());
}

namespace {

Status ValidateSelect(const Schema& schema, const SelectSpec& spec) {
  for (const TableAccess& a : spec.accesses) {
    if (a.table >= schema.num_tables()) {
      return Status::InvalidArgument("table id out of range");
    }
    const Table& t = schema.table(a.table);
    for (const Predicate& p : a.predicates) {
      if (p.column.table != a.table) {
        return Status::InvalidArgument("predicate column on wrong table");
      }
      if (p.column.column >= t.columns.size()) {
        return Status::InvalidArgument("predicate column out of range");
      }
      if (!(p.selectivity > 0.0 && p.selectivity <= 1.0)) {
        return Status::InvalidArgument("predicate selectivity out of (0,1]");
      }
    }
    for (ColumnId c : a.referenced_columns) {
      if (c >= t.columns.size()) {
        return Status::InvalidArgument("referenced column out of range");
      }
    }
  }
  for (const JoinEdge& j : spec.joins) {
    if (j.left_access >= spec.accesses.size() ||
        j.right_access >= spec.accesses.size()) {
      return Status::InvalidArgument("join access index out of range");
    }
    if (j.left_access == j.right_access) {
      return Status::InvalidArgument("self-referential join edge");
    }
  }
  return Status::OK();
}

}  // namespace

Status Workload::Validate() const {
  for (const Query& q : queries_) {
    if (q.template_id >= templates_.size()) {
      return Status::InvalidArgument("query references unknown template");
    }
    if (q.kind == StatementKind::kSelect && q.update.has_value()) {
      return Status::InvalidArgument("SELECT with update part");
    }
    if (q.kind != StatementKind::kSelect && !q.update.has_value()) {
      return Status::InvalidArgument("DML without update part");
    }
    PDX_RETURN_IF_ERROR(ValidateSelect(*schema_, q.select));
    if (q.update.has_value()) {
      const UpdateSpec& u = *q.update;
      if (u.table >= schema_->num_tables()) {
        return Status::InvalidArgument("update table id out of range");
      }
      if (!(u.selectivity > 0.0 && u.selectivity <= 1.0)) {
        return Status::InvalidArgument("update selectivity out of (0,1]");
      }
      const Table& t = schema_->table(u.table);
      for (ColumnId c : u.set_columns) {
        if (c >= t.columns.size()) {
          return Status::InvalidArgument("set column out of range");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace pdx
