// Copyright (c) the pdexplore authors.
// Logical schema of the simulated database: tables, columns and their
// value-distribution statistics. The what-if optimizer prices plans purely
// from this metadata (cardinalities, widths, distinct counts, skew); no
// data rows are materialized.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "catalog/types.h"
#include "common/status.h"

namespace pdx {

/// Column metadata. `num_distinct` and `zipf_theta` drive equality-predicate
/// selectivities: the paper's synthetic database draws attribute-value
/// frequencies from Zipf(theta = 1).
struct Column {
  std::string name;
  DataType type = DataType::kInt32;
  uint32_t width_bytes = 4;
  /// Number of distinct values; must be >= 1.
  uint64_t num_distinct = 1;
  /// Skew of the value-frequency distribution (0 = uniform).
  double zipf_theta = 0.0;

  Column() = default;
  Column(std::string n, DataType t, uint32_t width, uint64_t ndv,
         double theta)
      : name(std::move(n)),
        type(t),
        width_bytes(width),
        num_distinct(ndv),
        zipf_theta(theta) {}
};

/// Table metadata.
struct Table {
  std::string name;
  uint64_t row_count = 0;
  std::vector<Column> columns;

  /// Sum of column widths plus a fixed per-row header.
  uint32_t RowBytes() const;
  /// Number of heap pages at the catalog's page size.
  uint64_t HeapPages() const;
  /// Column index by name; kInvalidColumnId if absent.
  ColumnId FindColumn(std::string_view column_name) const;
};

/// A database schema: an ordered collection of tables.
class Schema {
 public:
  /// The simulated storage page size in bytes.
  static constexpr uint32_t kPageSizeBytes = 8192;
  /// Fixed per-row storage overhead (header, null bitmap).
  static constexpr uint32_t kRowHeaderBytes = 16;

  Schema() = default;
  explicit Schema(std::string name) : name_(std::move(name)) {}

  /// Appends a table; returns its TableId.
  TableId AddTable(Table table);

  const Table& table(TableId id) const;
  size_t num_tables() const { return tables_.size(); }
  const std::vector<Table>& tables() const { return tables_; }
  const std::string& name() const { return name_; }

  /// Table id by name; error if absent.
  Result<TableId> FindTable(std::string_view table_name) const;

  const Column& column(const ColumnRef& ref) const;

  /// Total heap size of all tables in bytes (the "database size" the paper
  /// quotes as ~1GB / ~0.7GB).
  uint64_t TotalHeapBytes() const;

  /// Validates invariants (non-empty tables, positive row counts, unique
  /// names). Returns the first violation found.
  Status Validate() const;

 private:
  std::string name_;
  std::vector<Table> tables_;
};

}  // namespace pdx
