#include "catalog/tpcd_schema.h"

#include <algorithm>
#include <cmath>

namespace pdx {

namespace {

uint64_t Scaled(double base, double sf) {
  return std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(base * sf)));
}

}  // namespace

std::vector<std::vector<const char*>> TpcdPrimaryKeyColumns() {
  return {
      {"r_regionkey"},              // region
      {"n_nationkey"},              // nation
      {"s_suppkey"},                // supplier
      {"c_custkey"},                // customer
      {"p_partkey"},                // part
      {"ps_partkey", "ps_suppkey"},  // partsupp
      {"o_orderkey"},               // orders
      {"l_orderkey", "l_linenumber"},  // lineitem
  };
}

Schema MakeTpcdSchema(const TpcdSchemaOptions& options) {
  const double sf = options.scale_factor;
  const double th = options.zipf_theta;
  PDX_CHECK(sf > 0.0);

  Schema schema("tpcd");

  {
    Table t;
    t.name = "region";
    t.row_count = 5;
    t.columns = {
        Column("r_regionkey", DataType::kInt32, 4, 5, 0.0),
        Column("r_name", DataType::kChar, 25, 5, 0.0),
        Column("r_comment", DataType::kVarchar, 100, 5, 0.0),
    };
    schema.AddTable(std::move(t));
  }
  {
    Table t;
    t.name = "nation";
    t.row_count = 25;
    t.columns = {
        Column("n_nationkey", DataType::kInt32, 4, 25, 0.0),
        Column("n_name", DataType::kChar, 25, 25, 0.0),
        Column("n_regionkey", DataType::kInt32, 4, 5, th),
        Column("n_comment", DataType::kVarchar, 100, 25, 0.0),
    };
    schema.AddTable(std::move(t));
  }
  {
    Table t;
    t.name = "supplier";
    t.row_count = Scaled(10000, sf);
    t.columns = {
        Column("s_suppkey", DataType::kInt32, 4, t.row_count, 0.0),
        Column("s_name", DataType::kChar, 25, t.row_count, 0.0),
        Column("s_address", DataType::kVarchar, 40, t.row_count, 0.0),
        Column("s_nationkey", DataType::kInt32, 4, 25, th),
        Column("s_phone", DataType::kChar, 15, t.row_count, 0.0),
        Column("s_acctbal", DataType::kDecimal, 8, std::min<uint64_t>(t.row_count, 100000), th),
        Column("s_comment", DataType::kVarchar, 100, t.row_count, 0.0),
    };
    schema.AddTable(std::move(t));
  }
  {
    Table t;
    t.name = "customer";
    t.row_count = Scaled(150000, sf);
    t.columns = {
        Column("c_custkey", DataType::kInt32, 4, t.row_count, 0.0),
        Column("c_name", DataType::kVarchar, 25, t.row_count, 0.0),
        Column("c_address", DataType::kVarchar, 40, t.row_count, 0.0),
        Column("c_nationkey", DataType::kInt32, 4, 25, th),
        Column("c_phone", DataType::kChar, 15, t.row_count, 0.0),
        Column("c_acctbal", DataType::kDecimal, 8, std::min<uint64_t>(t.row_count, 100000), th),
        Column("c_mktsegment", DataType::kChar, 10, 5, th),
        Column("c_comment", DataType::kVarchar, 117, t.row_count, 0.0),
    };
    schema.AddTable(std::move(t));
  }
  {
    Table t;
    t.name = "part";
    t.row_count = Scaled(200000, sf);
    t.columns = {
        Column("p_partkey", DataType::kInt32, 4, t.row_count, 0.0),
        Column("p_name", DataType::kVarchar, 55, t.row_count, 0.0),
        Column("p_mfgr", DataType::kChar, 25, 5, th),
        Column("p_brand", DataType::kChar, 10, 25, th),
        Column("p_type", DataType::kVarchar, 25, 150, th),
        Column("p_size", DataType::kInt32, 4, 50, th),
        Column("p_container", DataType::kChar, 10, 40, th),
        Column("p_retailprice", DataType::kDecimal, 8,
               std::min<uint64_t>(t.row_count, 30000), th),
        Column("p_comment", DataType::kVarchar, 23, t.row_count, 0.0),
    };
    schema.AddTable(std::move(t));
  }
  {
    Table t;
    t.name = "partsupp";
    t.row_count = Scaled(800000, sf);
    t.columns = {
        Column("ps_partkey", DataType::kInt32, 4, Scaled(200000, sf), 0.0),
        Column("ps_suppkey", DataType::kInt32, 4, Scaled(10000, sf), 0.0),
        Column("ps_availqty", DataType::kInt32, 4, 10000, th),
        Column("ps_supplycost", DataType::kDecimal, 8,
               std::min<uint64_t>(t.row_count, 100000), th),
        Column("ps_comment", DataType::kVarchar, 199, t.row_count, 0.0),
    };
    schema.AddTable(std::move(t));
  }
  {
    Table t;
    t.name = "orders";
    t.row_count = Scaled(1500000, sf);
    t.columns = {
        Column("o_orderkey", DataType::kInt64, 8, t.row_count, 0.0),
        Column("o_custkey", DataType::kInt32, 4, Scaled(150000, sf), th),
        Column("o_orderstatus", DataType::kChar, 1, 3, th),
        Column("o_totalprice", DataType::kDecimal, 8,
               std::min<uint64_t>(t.row_count, 1000000), th),
        Column("o_orderdate", DataType::kDate, 4, 2406, th),
        Column("o_orderpriority", DataType::kChar, 15, 5, th),
        Column("o_clerk", DataType::kChar, 15, Scaled(1000, sf), th),
        Column("o_shippriority", DataType::kInt32, 4, 1, 0.0),
        Column("o_comment", DataType::kVarchar, 79, t.row_count, 0.0),
    };
    schema.AddTable(std::move(t));
  }
  {
    Table t;
    t.name = "lineitem";
    t.row_count = Scaled(6000000, sf);
    t.columns = {
        Column("l_orderkey", DataType::kInt64, 8, Scaled(1500000, sf), 0.0),
        Column("l_partkey", DataType::kInt32, 4, Scaled(200000, sf), th),
        Column("l_suppkey", DataType::kInt32, 4, Scaled(10000, sf), th),
        Column("l_linenumber", DataType::kInt32, 4, 7, 0.0),
        Column("l_quantity", DataType::kDecimal, 8, 50, th),
        Column("l_extendedprice", DataType::kDecimal, 8,
               std::min<uint64_t>(t.row_count, 1000000), th),
        Column("l_discount", DataType::kDecimal, 8, 11, th),
        Column("l_tax", DataType::kDecimal, 8, 9, th),
        Column("l_returnflag", DataType::kChar, 1, 3, th),
        Column("l_linestatus", DataType::kChar, 1, 2, th),
        Column("l_shipdate", DataType::kDate, 4, 2526, th),
        Column("l_commitdate", DataType::kDate, 4, 2466, th),
        Column("l_receiptdate", DataType::kDate, 4, 2555, th),
        Column("l_shipinstruct", DataType::kChar, 25, 4, th),
        Column("l_shipmode", DataType::kChar, 10, 7, th),
        Column("l_comment", DataType::kVarchar, 44, t.row_count, 0.0),
    };
    schema.AddTable(std::move(t));
  }

  PDX_CHECK(schema.Validate().ok());
  return schema;
}

}  // namespace pdx
