#include "catalog/crm_schema.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/string_util.h"

namespace pdx {

namespace {

// Column archetypes a CRM-style OLTP table is assembled from.
Column MakeIdColumn(const std::string& table, uint64_t rows) {
  return Column(table + "_id", DataType::kInt64, 8, std::max<uint64_t>(1, rows),
                0.0);
}

Column MakeForeignKey(const std::string& name, uint64_t referenced_rows,
                      double theta) {
  return Column(name, DataType::kInt64, 8, std::max<uint64_t>(1, referenced_rows),
                theta);
}

Column MakeStatusColumn(const std::string& name, double theta) {
  return Column(name, DataType::kChar, 12, 8, theta);
}

Column MakeDateColumn(const std::string& name, double theta) {
  return Column(name, DataType::kDate, 4, 1825, theta);  // ~5 years of days
}

Column MakeAmountColumn(const std::string& name, uint64_t rows, double theta) {
  return Column(name, DataType::kDecimal, 8,
                std::max<uint64_t>(1, std::min<uint64_t>(rows, 50000)), theta);
}

Column MakeTextColumn(const std::string& name, uint32_t width, uint64_t rows) {
  return Column(name, DataType::kVarchar, width, std::max<uint64_t>(1, rows),
                0.0);
}

}  // namespace

Schema MakeCrmSchema(const CrmSchemaOptions& options) {
  PDX_CHECK(options.num_tables >= 10);
  Rng rng(options.seed);
  Schema schema("crm");

  // Draw raw table sizes from a log-normal; rescale to the byte target
  // afterwards.
  std::vector<double> raw_sizes(options.num_tables);
  for (double& s : raw_sizes) {
    s = rng.NextLogNormal(/*mu=*/6.0, options.size_lognormal_sigma);
  }
  std::sort(raw_sizes.rbegin(), raw_sizes.rend());

  struct PendingTable {
    Table table;
    double raw_rows;
  };
  std::vector<PendingTable> pending;
  pending.reserve(options.num_tables);

  for (uint32_t i = 0; i < options.num_tables; ++i) {
    PendingTable pt;
    pt.raw_rows = raw_sizes[i];
    Table& t = pt.table;
    t.name = StringFormat("crm_t%03u", i);
    uint64_t provisional_rows =
        std::max<uint64_t>(8, static_cast<uint64_t>(pt.raw_rows));
    t.columns.push_back(MakeIdColumn(t.name, provisional_rows));
    // Hot transactional tables are wide; the reference-table tail is narrow.
    uint32_t extra_cols =
        i < options.num_tables / 10
            ? static_cast<uint32_t>(rng.NextInt(8, 16))
            : static_cast<uint32_t>(rng.NextInt(2, 7));
    for (uint32_t c = 0; c < extra_cols; ++c) {
      std::string cname = StringFormat("%s_c%02u", t.name.c_str(), c);
      switch (rng.NextBounded(5)) {
        case 0:
          t.columns.push_back(MakeForeignKey(
              cname + "_fk", std::max<uint64_t>(4, provisional_rows / 50),
              options.zipf_theta));
          break;
        case 1:
          t.columns.push_back(MakeStatusColumn(cname + "_st", options.zipf_theta));
          break;
        case 2:
          t.columns.push_back(MakeDateColumn(cname + "_dt", options.zipf_theta));
          break;
        case 3:
          t.columns.push_back(
              MakeAmountColumn(cname + "_amt", provisional_rows, options.zipf_theta));
          break;
        default:
          t.columns.push_back(MakeTextColumn(
              cname + "_txt", static_cast<uint32_t>(rng.NextInt(16, 120)),
              provisional_rows));
          break;
      }
    }
    pending.push_back(std::move(pt));
  }

  // Rescale row counts so the total heap size lands near the target.
  double bytes_at_raw = 0.0;
  for (const PendingTable& pt : pending) {
    bytes_at_raw += pt.raw_rows * pt.table.RowBytes();
  }
  double scale = static_cast<double>(options.target_total_bytes) / bytes_at_raw;

  for (PendingTable& pt : pending) {
    Table t = std::move(pt.table);
    t.row_count = std::max<uint64_t>(
        8, static_cast<uint64_t>(std::llround(pt.raw_rows * scale)));
    // Clamp distinct counts to the final row count.
    for (Column& c : t.columns) {
      c.num_distinct = std::max<uint64_t>(1, std::min(c.num_distinct, t.row_count));
    }
    schema.AddTable(std::move(t));
  }

  PDX_CHECK(schema.Validate().ok());
  return schema;
}

}  // namespace pdx
