// Copyright (c) the pdexplore authors.
// Synthetic stand-in for the paper's real-life CRM database: "a database
// running a CRM application with over 500 tables and of size ~0.7 GB". We
// cannot ship the proprietary database, so we generate a schema with the
// same gross shape: several hundred tables with log-normally distributed
// row counts (a few large transactional tables, a long tail of small
// reference tables), mixed column types, and moderate value skew.
#pragma once

#include "catalog/schema.h"

namespace pdx {

/// Options controlling the generated CRM-like schema.
struct CrmSchemaOptions {
  /// Number of tables (paper: > 500).
  uint32_t num_tables = 520;
  /// Target total heap size in bytes (paper: ~0.7 GB). Row counts are
  /// rescaled after generation to land near this value.
  uint64_t target_total_bytes = 700ull * 1000 * 1000;
  /// Log-normal sigma of table row counts; larger values concentrate more
  /// of the database in a few hot tables.
  double size_lognormal_sigma = 2.2;
  /// Value-frequency skew of low-cardinality columns.
  double zipf_theta = 0.8;
  /// Seed for deterministic generation.
  uint64_t seed = 0xC0FFEE;
};

/// Builds the CRM-like schema.
Schema MakeCrmSchema(const CrmSchemaOptions& options = {});

}  // namespace pdx
