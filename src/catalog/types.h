// Copyright (c) the pdexplore authors.
// Fundamental identifier types for the simulated database catalog.
#pragma once

#include <cstdint>

namespace pdx {

/// Index of a table within a Schema.
using TableId = uint32_t;
/// Index of a column within its Table.
using ColumnId = uint32_t;
/// Identifier of a query template within a workload.
using TemplateId = uint32_t;
/// Identifier of a query within a workload.
using QueryId = uint32_t;
/// Identifier of a configuration within a comparison set.
using ConfigId = uint32_t;

constexpr TableId kInvalidTableId = UINT32_MAX;
constexpr ColumnId kInvalidColumnId = UINT32_MAX;

/// Storage data types. The cost model only needs widths, but the SQL
/// renderer uses the type to produce plausible literals.
enum class DataType : uint8_t {
  kInt32,
  kInt64,
  kDouble,
  kDecimal,
  kDate,
  kChar,     // fixed-width string
  kVarchar,  // variable-width string
};

/// A fully-qualified column reference.
struct ColumnRef {
  TableId table = kInvalidTableId;
  ColumnId column = kInvalidColumnId;

  bool operator==(const ColumnRef& o) const {
    return table == o.table && column == o.column;
  }
  bool operator<(const ColumnRef& o) const {
    return table != o.table ? table < o.table : column < o.column;
  }
};

}  // namespace pdx
