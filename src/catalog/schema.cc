#include "catalog/schema.h"

#include <unordered_set>

namespace pdx {

uint32_t Table::RowBytes() const {
  uint32_t bytes = Schema::kRowHeaderBytes;
  for (const Column& c : columns) bytes += c.width_bytes;
  return bytes;
}

uint64_t Table::HeapPages() const {
  uint64_t rows_per_page = Schema::kPageSizeBytes / std::max(1u, RowBytes());
  if (rows_per_page == 0) rows_per_page = 1;
  return (row_count + rows_per_page - 1) / rows_per_page;
}

ColumnId Table::FindColumn(std::string_view column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<ColumnId>(i);
  }
  return kInvalidColumnId;
}

TableId Schema::AddTable(Table table) {
  tables_.push_back(std::move(table));
  return static_cast<TableId>(tables_.size() - 1);
}

const Table& Schema::table(TableId id) const {
  PDX_CHECK(id < tables_.size());
  return tables_[id];
}

Result<TableId> Schema::FindTable(std::string_view table_name) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].name == table_name) return static_cast<TableId>(i);
  }
  return Status::NotFound("table '" + std::string(table_name) + "'");
}

const Column& Schema::column(const ColumnRef& ref) const {
  const Table& t = table(ref.table);
  PDX_CHECK(ref.column < t.columns.size());
  return t.columns[ref.column];
}

uint64_t Schema::TotalHeapBytes() const {
  uint64_t bytes = 0;
  for (const Table& t : tables_) bytes += t.HeapPages() * kPageSizeBytes;
  return bytes;
}

Status Schema::Validate() const {
  std::unordered_set<std::string> table_names;
  for (const Table& t : tables_) {
    if (t.name.empty()) return Status::InvalidArgument("unnamed table");
    if (!table_names.insert(t.name).second) {
      return Status::InvalidArgument("duplicate table name '" + t.name + "'");
    }
    if (t.columns.empty()) {
      return Status::InvalidArgument("table '" + t.name + "' has no columns");
    }
    if (t.row_count == 0) {
      return Status::InvalidArgument("table '" + t.name + "' has zero rows");
    }
    std::unordered_set<std::string> col_names;
    for (const Column& c : t.columns) {
      if (c.name.empty()) {
        return Status::InvalidArgument("unnamed column in '" + t.name + "'");
      }
      if (!col_names.insert(c.name).second) {
        return Status::InvalidArgument("duplicate column '" + c.name +
                                       "' in '" + t.name + "'");
      }
      if (c.num_distinct == 0) {
        return Status::InvalidArgument("column '" + t.name + "." + c.name +
                                       "' has zero distinct values");
      }
      if (c.num_distinct > t.row_count) {
        return Status::InvalidArgument("column '" + t.name + "." + c.name +
                                       "' has more distinct values than rows");
      }
      if (c.zipf_theta < 0.0) {
        return Status::InvalidArgument("column '" + t.name + "." + c.name +
                                       "' has negative zipf theta");
      }
    }
  }
  return Status::OK();
}

}  // namespace pdx
