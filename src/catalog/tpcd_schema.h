// Copyright (c) the pdexplore authors.
// The TPC-D (TPC-H) schema the paper's synthetic experiments run against:
// "The synthetic database follows the TPC-D schema and was generated so
// that the frequency of attribute values follows a Zipf-like distribution,
// using the skew-parameter theta = 1. The total data size is ~1GB."
#pragma once

#include <vector>

#include "catalog/schema.h"

namespace pdx {

/// Table ids within the TPC-D schema, in construction order.
enum TpcdTable : TableId {
  kRegion = 0,
  kNation = 1,
  kSupplier = 2,
  kCustomer = 3,
  kPart = 4,
  kPartsupp = 5,
  kOrders = 6,
  kLineitem = 7,
};

/// Options controlling the generated TPC-D schema.
struct TpcdSchemaOptions {
  /// Scale factor; 1.0 yields the canonical ~1GB database (6M lineitem).
  double scale_factor = 1.0;
  /// Skew of attribute-value frequencies (paper: theta = 1).
  double zipf_theta = 1.0;
};

/// Builds the TPC-D schema with cardinalities scaled by
/// `options.scale_factor` and the given value skew.
Schema MakeTpcdSchema(const TpcdSchemaOptions& options = {});

/// Names of the primary-key columns of each TPC-D table, in table order.
/// Deployed TPC-D databases always carry these indexes; experiments that
/// model a realistic "current configuration" start from them.
std::vector<std::vector<const char*>> TpcdPrimaryKeyColumns();

}  // namespace pdx
