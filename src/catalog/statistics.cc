#include "catalog/statistics.h"

#include <algorithm>
#include <cmath>

#include "common/zipf.h"

namespace pdx {

namespace {
// Zipf frequency computation over very large domains is approximated with
// the continuous integral of x^-theta; exact summation is used for small
// domains.
constexpr uint64_t kExactDomainLimit = 4096;

double ApproxHarmonic(double n, double theta) {
  if (std::abs(theta - 1.0) < 1e-9) return std::log(n) + 0.5772156649015329;
  return (std::pow(n, 1.0 - theta) - 1.0) / (1.0 - theta) + 1.0;
}
}  // namespace

double ColumnStatistics::EqualitySelectivity(uint64_t value_rank) const {
  uint64_t ndv = std::max<uint64_t>(1, column_.num_distinct);
  value_rank = std::min(value_rank, ndv - 1);
  if (column_.zipf_theta <= 0.0) return 1.0 / static_cast<double>(ndv);
  if (ndv <= kExactDomainLimit) {
    return ZipfFrequency(ndv, column_.zipf_theta, value_rank);
  }
  double h = ApproxHarmonic(static_cast<double>(ndv), column_.zipf_theta);
  return (1.0 / std::pow(static_cast<double>(value_rank + 1),
                         column_.zipf_theta)) /
         h;
}

double ColumnStatistics::EqualitySelectivityUniform() const {
  return 1.0 / static_cast<double>(std::max<uint64_t>(1, column_.num_distinct));
}

uint64_t ColumnStatistics::SampleValueRank(Rng* rng) const {
  PDX_CHECK(rng != nullptr);
  uint64_t ndv = std::max<uint64_t>(1, column_.num_distinct);
  if (column_.zipf_theta <= 0.0) return rng->NextBounded(ndv);
  if (ndv <= kExactDomainLimit) {
    ZipfDistribution dist(ndv, column_.zipf_theta);
    return dist.Sample(rng);
  }
  // Inverse-CDF sampling against the continuous approximation.
  double h = ApproxHarmonic(static_cast<double>(ndv), column_.zipf_theta);
  double u = rng->NextDouble() * h;
  double rank;
  if (std::abs(column_.zipf_theta - 1.0) < 1e-9) {
    rank = std::exp(u - 0.5772156649015329);
  } else {
    double t = (u - 1.0) * (1.0 - column_.zipf_theta) + 1.0;
    rank = t > 0.0 ? std::pow(t, 1.0 / (1.0 - column_.zipf_theta)) : 1.0;
  }
  uint64_t r = static_cast<uint64_t>(std::max(1.0, rank)) - 1;
  return std::min(r, ndv - 1);
}

double ColumnStatistics::RangeSelectivity(double domain_fraction) const {
  double floor_sel =
      1.0 / static_cast<double>(std::max<uint64_t>(1, column_.num_distinct));
  return std::clamp(domain_fraction, floor_sel, 1.0);
}

uint64_t DistinctAfterFilter(uint64_t num_distinct, double row_fraction) {
  row_fraction = std::clamp(row_fraction, 0.0, 1.0);
  // Cardenas/Yao-flavoured: d * (1 - (1 - f)^(n/d)) approximated by
  // min(d, d * f * e-ish growth); we use the simple bounded form.
  double d = static_cast<double>(num_distinct);
  double est = d * (1.0 - std::pow(1.0 - row_fraction, 3.0));
  est = std::max(1.0, std::min(d, est));
  return static_cast<uint64_t>(est);
}

}  // namespace pdx
