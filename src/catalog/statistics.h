// Copyright (c) the pdexplore authors.
// Selectivity derivation from catalog statistics. Workload generators call
// these when binding template parameters so that the "optimizer-estimated"
// selectivities embedded in a Query reflect the Zipf-skewed value
// distributions of the synthetic database.
#pragma once

#include <cstdint>

#include "catalog/schema.h"
#include "common/rng.h"

namespace pdx {

/// Derives per-predicate selectivities from column metadata.
class ColumnStatistics {
 public:
  explicit ColumnStatistics(const Column& column) : column_(column) {}

  /// Selectivity of `col = v` where v is the value of the given frequency
  /// rank (0 = most frequent). Under Zipf(theta) this is the value's
  /// relative frequency.
  double EqualitySelectivity(uint64_t value_rank) const;

  /// Selectivity of `col = v` for a *uniformly chosen distinct value*
  /// (i.e. 1 / ndv, the textbook estimate without skew knowledge).
  double EqualitySelectivityUniform() const;

  /// Draws a value rank according to the column's value-frequency
  /// distribution (frequent values are queried more often, as in QGEN-style
  /// parameter binding against skewed data).
  uint64_t SampleValueRank(Rng* rng) const;

  /// Selectivity of a range predicate covering `fraction` of the value
  /// domain, clamped to [1/rows-ish floor, 1].
  double RangeSelectivity(double domain_fraction) const;

 private:
  const Column& column_;
};

/// Estimated number of distinct values remaining after filtering a table
/// to `row_fraction` of its rows (Yao-style approximation, capped).
uint64_t DistinctAfterFilter(uint64_t num_distinct, double row_fraction);

}  // namespace pdx
