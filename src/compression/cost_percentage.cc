#include "compression/cost_percentage.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

namespace pdx {

CompressionResult CompressByCostPercentage(
    const std::vector<double>& current_costs,
    const std::vector<TemplateId>& templates, double cost_fraction) {
  PDX_CHECK(current_costs.size() == templates.size());
  PDX_CHECK(cost_fraction > 0.0 && cost_fraction <= 1.0);

  std::vector<QueryId> order(current_costs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](QueryId a, QueryId b) {
    return current_costs[a] > current_costs[b];
  });

  double total = 0.0;
  for (double c : current_costs) total += c;
  double target = total * cost_fraction;

  CompressionResult out;
  std::unordered_set<TemplateId> seen;
  double covered = 0.0;
  for (QueryId q : order) {
    if (covered >= target) break;
    out.retained.push_back(q);
    covered += current_costs[q];
    seen.insert(templates[q]);
  }
  out.cost_coverage = total > 0.0 ? covered / total : 1.0;
  out.templates_covered = static_cast<uint32_t>(seen.size());
  return out;
}

}  // namespace pdx
