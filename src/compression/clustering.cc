#include "compression/clustering.h"

#include <algorithm>

#include "common/macros.h"

namespace pdx {

ClusteringResult ClusterCompress(const Workload& workload,
                                 const std::vector<double>& current_costs,
                                 double max_distance) {
  PDX_CHECK(current_costs.size() == workload.size());
  PDX_CHECK(max_distance >= 0.0);

  ClusteringResult out;
  // Visit queries in descending cost order so medoids are the expensive
  // representatives ([5] keeps high-impact queries as cluster centers).
  std::vector<QueryId> order(workload.size());
  for (QueryId q = 0; q < workload.size(); ++q) order[q] = q;
  std::sort(order.begin(), order.end(), [&](QueryId a, QueryId b) {
    return current_costs[a] > current_costs[b];
  });

  for (QueryId q : order) {
    const Query& query = workload.query(q);
    double best_dist = 0.0;
    int64_t best_cluster = -1;
    for (size_t c = 0; c < out.clusters.size(); ++c) {
      const QueryCluster& cluster = out.clusters[c];
      const Query& medoid = workload.query(cluster.medoid);
      out.distance_computations += 1;
      double d = QueryDistance(workload.schema(), query, current_costs[q],
                               medoid, current_costs[cluster.medoid]);
      if (d <= max_distance && (best_cluster < 0 || d < best_dist)) {
        best_dist = d;
        best_cluster = static_cast<int64_t>(c);
      }
    }
    if (best_cluster >= 0) {
      QueryCluster& cluster = out.clusters[static_cast<size_t>(best_cluster)];
      cluster.members.push_back(q);
      cluster.total_cost += current_costs[q];
    } else {
      QueryCluster fresh;
      fresh.medoid = q;
      fresh.members = {q};
      fresh.total_cost = current_costs[q];
      out.clusters.push_back(std::move(fresh));
    }
  }
  return out;
}

std::vector<QueryId> Medoids(const ClusteringResult& result) {
  std::vector<QueryId> out;
  out.reserve(result.clusters.size());
  for (const QueryCluster& c : result.clusters) out.push_back(c.medoid);
  return out;
}

}  // namespace pdx
