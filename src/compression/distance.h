// Copyright (c) the pdexplore authors.
// Query distance function for clustering-based workload compression — the
// [5]-style comparator (Chaudhuri et al., "Compressing SQL Workloads").
//
// [5] clusters queries under a distance that "models the maximum
// difference in cost between two queries for arbitrary configurations",
// computed from query structure without optimizer estimates. Our analog
// follows that recipe: queries of different templates are maximally far
// apart (replacing one by the other can forfeit template-specific design
// structures worth up to their joint cost); within a template, the
// distance is the current-cost difference scaled by a parameter-mismatch
// factor derived from predicate selectivities.
#pragma once

#include "catalog/schema.h"
#include "workload/query.h"

namespace pdx {

/// Distance between two workload statements. `cost_a` / `cost_b` are their
/// costs in the current configuration (the only optimizer numbers [5]'s
/// preprocessing has). Symmetric and non-negative; zero iff the queries
/// have identical template and bindings.
double QueryDistance(const Schema& schema, const Query& a, double cost_a,
                     const Query& b, double cost_b);

/// Selectivity-mismatch factor in [0, 1] between two instances of the
/// same template (0 = identical bindings).
double SelectivityMismatch(const Query& a, const Query& b);

}  // namespace pdx
