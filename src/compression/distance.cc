#include "compression/distance.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace pdx {

double SelectivityMismatch(const Query& a, const Query& b) {
  PDX_CHECK(a.template_id == b.template_id);
  // Predicate lists of same-template queries are structurally aligned.
  double mismatch = 0.0;
  size_t count = 0;
  for (size_t acc = 0;
       acc < a.select.accesses.size() && acc < b.select.accesses.size();
       ++acc) {
    const auto& pa = a.select.accesses[acc].predicates;
    const auto& pb = b.select.accesses[acc].predicates;
    for (size_t p = 0; p < pa.size() && p < pb.size(); ++p) {
      double sa = pa[p].selectivity;
      double sb = pb[p].selectivity;
      double hi = std::max(sa, sb);
      if (hi > 0.0) mismatch += std::abs(sa - sb) / hi;
      ++count;
    }
  }
  if (count == 0) return 0.0;
  return std::clamp(mismatch / static_cast<double>(count), 0.0, 1.0);
}

double QueryDistance(const Schema& /*schema*/, const Query& a, double cost_a,
                     const Query& b, double cost_b) {
  if (a.template_id != b.template_id) {
    // Dropping either query can forfeit design structures only it needs;
    // the worst-case cost impact is bounded by the larger current cost
    // plus the discarded query's cost.
    return cost_a + cost_b;
  }
  double mismatch = SelectivityMismatch(a, b);
  return std::abs(cost_a - cost_b) + mismatch * std::min(cost_a, cost_b);
}

}  // namespace pdx
