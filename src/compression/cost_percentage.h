// Copyright (c) the pdexplore authors.
// Workload compression by current-cost percentage — the [20]-style
// comparator (DB2 Design Advisor): "queries are selected in order of their
// costs for the current configuration until a prespecified percentage X of
// the total workload cost is selected". Scales well; fails when few
// templates hold the most expensive queries (§7.3).
#pragma once

#include <cstdint>
#include <vector>

#include "catalog/types.h"
#include "common/macros.h"

namespace pdx {

/// Result of a compression pass: the retained query ids (original
/// workload ids) and bookkeeping for quality analysis.
struct CompressionResult {
  std::vector<QueryId> retained;
  /// Fraction of total current cost covered by the retained set.
  double cost_coverage = 0.0;
  /// Number of distinct templates represented in the retained set.
  uint32_t templates_covered = 0;
};

/// Retains the most expensive queries (by `current_costs`, the cost of
/// each query in the currently deployed configuration) until at least
/// `cost_fraction` of the total cost is covered. `templates[q]` maps each
/// query to its template (for the coverage diagnostics).
CompressionResult CompressByCostPercentage(
    const std::vector<double>& current_costs,
    const std::vector<TemplateId>& templates, double cost_fraction);

}  // namespace pdx
