// Copyright (c) the pdexplore authors.
// Clustering-based workload compression ([5]-style). Greedy leader
// clustering under the QueryDistance metric: a query joins an existing
// cluster when its distance to the cluster medoid is within the sensitivity
// threshold W; otherwise it founds a new cluster. The compressed workload
// is the set of medoids, each weighted by its cluster size. Preprocessing
// needs up to O(|WL|^2) distance computations — the scalability weakness
// §7.3 measures.
#pragma once

#include <cstdint>
#include <vector>

#include "compression/distance.h"
#include "workload/workload.h"

namespace pdx {

/// One cluster of the compression.
struct QueryCluster {
  /// Representative query (workload id).
  QueryId medoid = 0;
  /// Members, including the medoid.
  std::vector<QueryId> members;
  /// Sum of current costs of the members (the medoid's weight when the
  /// compressed workload is tuned).
  double total_cost = 0.0;
};

/// Result of clustering compression.
struct ClusteringResult {
  std::vector<QueryCluster> clusters;
  /// Number of distance computations performed (scalability metric).
  uint64_t distance_computations = 0;
};

/// Compresses `workload` under sensitivity threshold `max_distance` (the
/// [5] parameter: "the maximum allowable increase in the estimated running
/// time when queries are discarded"). `current_costs[q]` is each query's
/// cost in the current configuration.
ClusteringResult ClusterCompress(const Workload& workload,
                                 const std::vector<double>& current_costs,
                                 double max_distance);

/// Convenience: medoid ids of a clustering result.
std::vector<QueryId> Medoids(const ClusteringResult& result);

}  // namespace pdx
