# Empty dependencies file for test_cost_source.
# This may be replaced when dependencies are built.
