file(REMOVE_RECURSE
  "CMakeFiles/test_cost_source.dir/test_cost_source.cc.o"
  "CMakeFiles/test_cost_source.dir/test_cost_source.cc.o.d"
  "test_cost_source"
  "test_cost_source.pdb"
  "test_cost_source[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
