# Empty compiler generated dependencies file for test_clt_check.
# This may be replaced when dependencies are built.
