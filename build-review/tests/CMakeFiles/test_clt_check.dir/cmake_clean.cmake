file(REMOVE_RECURSE
  "CMakeFiles/test_clt_check.dir/test_clt_check.cc.o"
  "CMakeFiles/test_clt_check.dir/test_clt_check.cc.o.d"
  "test_clt_check"
  "test_clt_check.pdb"
  "test_clt_check[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clt_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
