# Empty compiler generated dependencies file for test_cost_bounds.
# This may be replaced when dependencies are built.
