file(REMOVE_RECURSE
  "CMakeFiles/test_cost_bounds.dir/test_cost_bounds.cc.o"
  "CMakeFiles/test_cost_bounds.dir/test_cost_bounds.cc.o.d"
  "test_cost_bounds"
  "test_cost_bounds.pdb"
  "test_cost_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
