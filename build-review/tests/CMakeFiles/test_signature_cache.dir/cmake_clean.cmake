file(REMOVE_RECURSE
  "CMakeFiles/test_signature_cache.dir/test_signature_cache.cc.o"
  "CMakeFiles/test_signature_cache.dir/test_signature_cache.cc.o.d"
  "test_signature_cache"
  "test_signature_cache.pdb"
  "test_signature_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signature_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
