# Empty dependencies file for test_running_stats.
# This may be replaced when dependencies are built.
