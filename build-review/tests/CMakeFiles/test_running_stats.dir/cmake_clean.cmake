file(REMOVE_RECURSE
  "CMakeFiles/test_running_stats.dir/test_running_stats.cc.o"
  "CMakeFiles/test_running_stats.dir/test_running_stats.cc.o.d"
  "test_running_stats"
  "test_running_stats.pdb"
  "test_running_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_running_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
