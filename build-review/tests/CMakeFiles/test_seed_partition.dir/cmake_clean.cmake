file(REMOVE_RECURSE
  "CMakeFiles/test_seed_partition.dir/test_seed_partition.cc.o"
  "CMakeFiles/test_seed_partition.dir/test_seed_partition.cc.o.d"
  "test_seed_partition"
  "test_seed_partition.pdb"
  "test_seed_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seed_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
