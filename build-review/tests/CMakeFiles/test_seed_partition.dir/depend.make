# Empty dependencies file for test_seed_partition.
# This may be replaced when dependencies are built.
