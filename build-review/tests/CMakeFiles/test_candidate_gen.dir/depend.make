# Empty dependencies file for test_candidate_gen.
# This may be replaced when dependencies are built.
