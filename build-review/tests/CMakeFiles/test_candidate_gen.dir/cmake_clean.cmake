file(REMOVE_RECURSE
  "CMakeFiles/test_candidate_gen.dir/test_candidate_gen.cc.o"
  "CMakeFiles/test_candidate_gen.dir/test_candidate_gen.cc.o.d"
  "test_candidate_gen"
  "test_candidate_gen.pdb"
  "test_candidate_gen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_candidate_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
