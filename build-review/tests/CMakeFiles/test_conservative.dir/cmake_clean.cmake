file(REMOVE_RECURSE
  "CMakeFiles/test_conservative.dir/test_conservative.cc.o"
  "CMakeFiles/test_conservative.dir/test_conservative.cc.o.d"
  "test_conservative"
  "test_conservative.pdb"
  "test_conservative[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conservative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
