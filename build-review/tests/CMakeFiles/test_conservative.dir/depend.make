# Empty dependencies file for test_conservative.
# This may be replaced when dependencies are built.
