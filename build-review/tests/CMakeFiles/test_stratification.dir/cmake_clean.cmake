file(REMOVE_RECURSE
  "CMakeFiles/test_stratification.dir/test_stratification.cc.o"
  "CMakeFiles/test_stratification.dir/test_stratification.cc.o.d"
  "test_stratification"
  "test_stratification.pdb"
  "test_stratification[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stratification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
