# Empty compiler generated dependencies file for test_stratification.
# This may be replaced when dependencies are built.
