file(REMOVE_RECURSE
  "CMakeFiles/test_fixed_budget.dir/test_fixed_budget.cc.o"
  "CMakeFiles/test_fixed_budget.dir/test_fixed_budget.cc.o.d"
  "test_fixed_budget"
  "test_fixed_budget.pdb"
  "test_fixed_budget[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixed_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
