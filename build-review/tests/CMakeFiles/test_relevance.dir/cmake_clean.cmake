file(REMOVE_RECURSE
  "CMakeFiles/test_relevance.dir/test_relevance.cc.o"
  "CMakeFiles/test_relevance.dir/test_relevance.cc.o.d"
  "test_relevance"
  "test_relevance.pdb"
  "test_relevance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relevance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
