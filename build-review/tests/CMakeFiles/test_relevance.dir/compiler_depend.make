# Empty compiler generated dependencies file for test_relevance.
# This may be replaced when dependencies are built.
