# Empty dependencies file for test_skew_bound.
# This may be replaced when dependencies are built.
