file(REMOVE_RECURSE
  "CMakeFiles/test_skew_bound.dir/test_skew_bound.cc.o"
  "CMakeFiles/test_skew_bound.dir/test_skew_bound.cc.o.d"
  "test_skew_bound"
  "test_skew_bound.pdb"
  "test_skew_bound[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skew_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
