# Empty dependencies file for test_selection_trace.
# This may be replaced when dependencies are built.
