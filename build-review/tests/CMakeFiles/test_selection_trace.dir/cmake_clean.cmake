file(REMOVE_RECURSE
  "CMakeFiles/test_selection_trace.dir/test_selection_trace.cc.o"
  "CMakeFiles/test_selection_trace.dir/test_selection_trace.cc.o.d"
  "test_selection_trace"
  "test_selection_trace.pdb"
  "test_selection_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selection_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
