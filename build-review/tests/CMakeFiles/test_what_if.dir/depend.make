# Empty dependencies file for test_what_if.
# This may be replaced when dependencies are built.
