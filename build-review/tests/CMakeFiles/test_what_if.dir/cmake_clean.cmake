file(REMOVE_RECURSE
  "CMakeFiles/test_what_if.dir/test_what_if.cc.o"
  "CMakeFiles/test_what_if.dir/test_what_if.cc.o.d"
  "test_what_if"
  "test_what_if.pdb"
  "test_what_if[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_what_if.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
