# Empty dependencies file for test_workload_store.
# This may be replaced when dependencies are built.
