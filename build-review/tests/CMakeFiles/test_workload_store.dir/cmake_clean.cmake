file(REMOVE_RECURSE
  "CMakeFiles/test_workload_store.dir/test_workload_store.cc.o"
  "CMakeFiles/test_workload_store.dir/test_workload_store.cc.o.d"
  "test_workload_store"
  "test_workload_store.pdb"
  "test_workload_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
