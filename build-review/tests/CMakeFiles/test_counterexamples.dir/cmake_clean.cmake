file(REMOVE_RECURSE
  "CMakeFiles/test_counterexamples.dir/test_counterexamples.cc.o"
  "CMakeFiles/test_counterexamples.dir/test_counterexamples.cc.o.d"
  "test_counterexamples"
  "test_counterexamples.pdb"
  "test_counterexamples[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_counterexamples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
