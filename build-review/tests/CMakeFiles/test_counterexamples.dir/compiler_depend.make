# Empty compiler generated dependencies file for test_counterexamples.
# This may be replaced when dependencies are built.
