file(REMOVE_RECURSE
  "CMakeFiles/test_pr_cs.dir/test_pr_cs.cc.o"
  "CMakeFiles/test_pr_cs.dir/test_pr_cs.cc.o.d"
  "test_pr_cs"
  "test_pr_cs.pdb"
  "test_pr_cs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pr_cs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
