# Empty compiler generated dependencies file for test_pr_cs.
# This may be replaced when dependencies are built.
