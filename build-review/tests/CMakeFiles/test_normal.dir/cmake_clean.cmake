file(REMOVE_RECURSE
  "CMakeFiles/test_normal.dir/test_normal.cc.o"
  "CMakeFiles/test_normal.dir/test_normal.cc.o.d"
  "test_normal"
  "test_normal.pdb"
  "test_normal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_normal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
