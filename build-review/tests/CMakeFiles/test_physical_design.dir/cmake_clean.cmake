file(REMOVE_RECURSE
  "CMakeFiles/test_physical_design.dir/test_physical_design.cc.o"
  "CMakeFiles/test_physical_design.dir/test_physical_design.cc.o.d"
  "test_physical_design"
  "test_physical_design.pdb"
  "test_physical_design[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_physical_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
