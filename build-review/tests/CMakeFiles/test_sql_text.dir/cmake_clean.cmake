file(REMOVE_RECURSE
  "CMakeFiles/test_sql_text.dir/test_sql_text.cc.o"
  "CMakeFiles/test_sql_text.dir/test_sql_text.cc.o.d"
  "test_sql_text"
  "test_sql_text.pdb"
  "test_sql_text[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sql_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
