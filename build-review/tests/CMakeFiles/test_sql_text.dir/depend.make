# Empty dependencies file for test_sql_text.
# This may be replaced when dependencies are built.
