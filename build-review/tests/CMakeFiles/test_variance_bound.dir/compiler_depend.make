# Empty compiler generated dependencies file for test_variance_bound.
# This may be replaced when dependencies are built.
