file(REMOVE_RECURSE
  "CMakeFiles/test_variance_bound.dir/test_variance_bound.cc.o"
  "CMakeFiles/test_variance_bound.dir/test_variance_bound.cc.o.d"
  "test_variance_bound"
  "test_variance_bound.pdb"
  "test_variance_bound[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_variance_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
