# Empty dependencies file for test_batching.
# This may be replaced when dependencies are built.
