file(REMOVE_RECURSE
  "CMakeFiles/test_batching.dir/test_batching.cc.o"
  "CMakeFiles/test_batching.dir/test_batching.cc.o.d"
  "test_batching"
  "test_batching.pdb"
  "test_batching[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
