file(REMOVE_RECURSE
  "libpdx_validation.a"
)
