file(REMOVE_RECURSE
  "CMakeFiles/pdx_validation.dir/calibration.cc.o"
  "CMakeFiles/pdx_validation.dir/calibration.cc.o.d"
  "CMakeFiles/pdx_validation.dir/golden.cc.o"
  "CMakeFiles/pdx_validation.dir/golden.cc.o.d"
  "CMakeFiles/pdx_validation.dir/property.cc.o"
  "CMakeFiles/pdx_validation.dir/property.cc.o.d"
  "libpdx_validation.a"
  "libpdx_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdx_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
