# Empty dependencies file for pdx_validation.
# This may be replaced when dependencies are built.
