file(REMOVE_RECURSE
  "CMakeFiles/pdx_workload.dir/crm_trace.cc.o"
  "CMakeFiles/pdx_workload.dir/crm_trace.cc.o.d"
  "CMakeFiles/pdx_workload.dir/query.cc.o"
  "CMakeFiles/pdx_workload.dir/query.cc.o.d"
  "CMakeFiles/pdx_workload.dir/query_builder.cc.o"
  "CMakeFiles/pdx_workload.dir/query_builder.cc.o.d"
  "CMakeFiles/pdx_workload.dir/sql_text.cc.o"
  "CMakeFiles/pdx_workload.dir/sql_text.cc.o.d"
  "CMakeFiles/pdx_workload.dir/tpcd_qgen.cc.o"
  "CMakeFiles/pdx_workload.dir/tpcd_qgen.cc.o.d"
  "CMakeFiles/pdx_workload.dir/workload.cc.o"
  "CMakeFiles/pdx_workload.dir/workload.cc.o.d"
  "CMakeFiles/pdx_workload.dir/workload_store.cc.o"
  "CMakeFiles/pdx_workload.dir/workload_store.cc.o.d"
  "libpdx_workload.a"
  "libpdx_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdx_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
