file(REMOVE_RECURSE
  "libpdx_workload.a"
)
