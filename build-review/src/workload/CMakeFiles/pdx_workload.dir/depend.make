# Empty dependencies file for pdx_workload.
# This may be replaced when dependencies are built.
