
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/crm_trace.cc" "src/workload/CMakeFiles/pdx_workload.dir/crm_trace.cc.o" "gcc" "src/workload/CMakeFiles/pdx_workload.dir/crm_trace.cc.o.d"
  "/root/repo/src/workload/query.cc" "src/workload/CMakeFiles/pdx_workload.dir/query.cc.o" "gcc" "src/workload/CMakeFiles/pdx_workload.dir/query.cc.o.d"
  "/root/repo/src/workload/query_builder.cc" "src/workload/CMakeFiles/pdx_workload.dir/query_builder.cc.o" "gcc" "src/workload/CMakeFiles/pdx_workload.dir/query_builder.cc.o.d"
  "/root/repo/src/workload/sql_text.cc" "src/workload/CMakeFiles/pdx_workload.dir/sql_text.cc.o" "gcc" "src/workload/CMakeFiles/pdx_workload.dir/sql_text.cc.o.d"
  "/root/repo/src/workload/tpcd_qgen.cc" "src/workload/CMakeFiles/pdx_workload.dir/tpcd_qgen.cc.o" "gcc" "src/workload/CMakeFiles/pdx_workload.dir/tpcd_qgen.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/workload/CMakeFiles/pdx_workload.dir/workload.cc.o" "gcc" "src/workload/CMakeFiles/pdx_workload.dir/workload.cc.o.d"
  "/root/repo/src/workload/workload_store.cc" "src/workload/CMakeFiles/pdx_workload.dir/workload_store.cc.o" "gcc" "src/workload/CMakeFiles/pdx_workload.dir/workload_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/pdx_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/catalog/CMakeFiles/pdx_catalog.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
