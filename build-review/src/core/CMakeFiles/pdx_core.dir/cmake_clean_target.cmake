file(REMOVE_RECURSE
  "libpdx_core.a"
)
