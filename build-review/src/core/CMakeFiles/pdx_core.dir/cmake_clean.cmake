file(REMOVE_RECURSE
  "CMakeFiles/pdx_core.dir/batching.cc.o"
  "CMakeFiles/pdx_core.dir/batching.cc.o.d"
  "CMakeFiles/pdx_core.dir/clt_check.cc.o"
  "CMakeFiles/pdx_core.dir/clt_check.cc.o.d"
  "CMakeFiles/pdx_core.dir/conservative.cc.o"
  "CMakeFiles/pdx_core.dir/conservative.cc.o.d"
  "CMakeFiles/pdx_core.dir/cost_source.cc.o"
  "CMakeFiles/pdx_core.dir/cost_source.cc.o.d"
  "CMakeFiles/pdx_core.dir/estimators.cc.o"
  "CMakeFiles/pdx_core.dir/estimators.cc.o.d"
  "CMakeFiles/pdx_core.dir/fault.cc.o"
  "CMakeFiles/pdx_core.dir/fault.cc.o.d"
  "CMakeFiles/pdx_core.dir/fixed_budget.cc.o"
  "CMakeFiles/pdx_core.dir/fixed_budget.cc.o.d"
  "CMakeFiles/pdx_core.dir/pr_cs.cc.o"
  "CMakeFiles/pdx_core.dir/pr_cs.cc.o.d"
  "CMakeFiles/pdx_core.dir/selection_trace.cc.o"
  "CMakeFiles/pdx_core.dir/selection_trace.cc.o.d"
  "CMakeFiles/pdx_core.dir/selector.cc.o"
  "CMakeFiles/pdx_core.dir/selector.cc.o.d"
  "CMakeFiles/pdx_core.dir/skew_bound.cc.o"
  "CMakeFiles/pdx_core.dir/skew_bound.cc.o.d"
  "CMakeFiles/pdx_core.dir/stratification.cc.o"
  "CMakeFiles/pdx_core.dir/stratification.cc.o.d"
  "CMakeFiles/pdx_core.dir/variance_bound.cc.o"
  "CMakeFiles/pdx_core.dir/variance_bound.cc.o.d"
  "libpdx_core.a"
  "libpdx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
