
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/batching.cc" "src/core/CMakeFiles/pdx_core.dir/batching.cc.o" "gcc" "src/core/CMakeFiles/pdx_core.dir/batching.cc.o.d"
  "/root/repo/src/core/clt_check.cc" "src/core/CMakeFiles/pdx_core.dir/clt_check.cc.o" "gcc" "src/core/CMakeFiles/pdx_core.dir/clt_check.cc.o.d"
  "/root/repo/src/core/conservative.cc" "src/core/CMakeFiles/pdx_core.dir/conservative.cc.o" "gcc" "src/core/CMakeFiles/pdx_core.dir/conservative.cc.o.d"
  "/root/repo/src/core/cost_source.cc" "src/core/CMakeFiles/pdx_core.dir/cost_source.cc.o" "gcc" "src/core/CMakeFiles/pdx_core.dir/cost_source.cc.o.d"
  "/root/repo/src/core/estimators.cc" "src/core/CMakeFiles/pdx_core.dir/estimators.cc.o" "gcc" "src/core/CMakeFiles/pdx_core.dir/estimators.cc.o.d"
  "/root/repo/src/core/fault.cc" "src/core/CMakeFiles/pdx_core.dir/fault.cc.o" "gcc" "src/core/CMakeFiles/pdx_core.dir/fault.cc.o.d"
  "/root/repo/src/core/fixed_budget.cc" "src/core/CMakeFiles/pdx_core.dir/fixed_budget.cc.o" "gcc" "src/core/CMakeFiles/pdx_core.dir/fixed_budget.cc.o.d"
  "/root/repo/src/core/pr_cs.cc" "src/core/CMakeFiles/pdx_core.dir/pr_cs.cc.o" "gcc" "src/core/CMakeFiles/pdx_core.dir/pr_cs.cc.o.d"
  "/root/repo/src/core/selection_trace.cc" "src/core/CMakeFiles/pdx_core.dir/selection_trace.cc.o" "gcc" "src/core/CMakeFiles/pdx_core.dir/selection_trace.cc.o.d"
  "/root/repo/src/core/selector.cc" "src/core/CMakeFiles/pdx_core.dir/selector.cc.o" "gcc" "src/core/CMakeFiles/pdx_core.dir/selector.cc.o.d"
  "/root/repo/src/core/skew_bound.cc" "src/core/CMakeFiles/pdx_core.dir/skew_bound.cc.o" "gcc" "src/core/CMakeFiles/pdx_core.dir/skew_bound.cc.o.d"
  "/root/repo/src/core/stratification.cc" "src/core/CMakeFiles/pdx_core.dir/stratification.cc.o" "gcc" "src/core/CMakeFiles/pdx_core.dir/stratification.cc.o.d"
  "/root/repo/src/core/variance_bound.cc" "src/core/CMakeFiles/pdx_core.dir/variance_bound.cc.o" "gcc" "src/core/CMakeFiles/pdx_core.dir/variance_bound.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/pdx_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/catalog/CMakeFiles/pdx_catalog.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/pdx_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/optimizer/CMakeFiles/pdx_optimizer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
