# Empty dependencies file for pdx_core.
# This may be replaced when dependencies are built.
