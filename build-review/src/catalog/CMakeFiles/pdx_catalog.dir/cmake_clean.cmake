file(REMOVE_RECURSE
  "CMakeFiles/pdx_catalog.dir/crm_schema.cc.o"
  "CMakeFiles/pdx_catalog.dir/crm_schema.cc.o.d"
  "CMakeFiles/pdx_catalog.dir/schema.cc.o"
  "CMakeFiles/pdx_catalog.dir/schema.cc.o.d"
  "CMakeFiles/pdx_catalog.dir/statistics.cc.o"
  "CMakeFiles/pdx_catalog.dir/statistics.cc.o.d"
  "CMakeFiles/pdx_catalog.dir/tpcd_schema.cc.o"
  "CMakeFiles/pdx_catalog.dir/tpcd_schema.cc.o.d"
  "libpdx_catalog.a"
  "libpdx_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdx_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
