
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/crm_schema.cc" "src/catalog/CMakeFiles/pdx_catalog.dir/crm_schema.cc.o" "gcc" "src/catalog/CMakeFiles/pdx_catalog.dir/crm_schema.cc.o.d"
  "/root/repo/src/catalog/schema.cc" "src/catalog/CMakeFiles/pdx_catalog.dir/schema.cc.o" "gcc" "src/catalog/CMakeFiles/pdx_catalog.dir/schema.cc.o.d"
  "/root/repo/src/catalog/statistics.cc" "src/catalog/CMakeFiles/pdx_catalog.dir/statistics.cc.o" "gcc" "src/catalog/CMakeFiles/pdx_catalog.dir/statistics.cc.o.d"
  "/root/repo/src/catalog/tpcd_schema.cc" "src/catalog/CMakeFiles/pdx_catalog.dir/tpcd_schema.cc.o" "gcc" "src/catalog/CMakeFiles/pdx_catalog.dir/tpcd_schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/pdx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
