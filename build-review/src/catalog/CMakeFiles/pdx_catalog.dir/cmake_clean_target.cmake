file(REMOVE_RECURSE
  "libpdx_catalog.a"
)
