# Empty compiler generated dependencies file for pdx_catalog.
# This may be replaced when dependencies are built.
