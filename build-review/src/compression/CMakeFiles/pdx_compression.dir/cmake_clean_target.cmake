file(REMOVE_RECURSE
  "libpdx_compression.a"
)
