file(REMOVE_RECURSE
  "CMakeFiles/pdx_compression.dir/clustering.cc.o"
  "CMakeFiles/pdx_compression.dir/clustering.cc.o.d"
  "CMakeFiles/pdx_compression.dir/cost_percentage.cc.o"
  "CMakeFiles/pdx_compression.dir/cost_percentage.cc.o.d"
  "CMakeFiles/pdx_compression.dir/distance.cc.o"
  "CMakeFiles/pdx_compression.dir/distance.cc.o.d"
  "libpdx_compression.a"
  "libpdx_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdx_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
