# Empty compiler generated dependencies file for pdx_compression.
# This may be replaced when dependencies are built.
