file(REMOVE_RECURSE
  "CMakeFiles/pdx_tuner.dir/enumerator.cc.o"
  "CMakeFiles/pdx_tuner.dir/enumerator.cc.o.d"
  "CMakeFiles/pdx_tuner.dir/greedy_tuner.cc.o"
  "CMakeFiles/pdx_tuner.dir/greedy_tuner.cc.o.d"
  "libpdx_tuner.a"
  "libpdx_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdx_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
