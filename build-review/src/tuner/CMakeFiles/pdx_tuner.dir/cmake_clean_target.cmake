file(REMOVE_RECURSE
  "libpdx_tuner.a"
)
