# Empty compiler generated dependencies file for pdx_tuner.
# This may be replaced when dependencies are built.
