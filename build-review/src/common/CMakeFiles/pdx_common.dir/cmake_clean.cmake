file(REMOVE_RECURSE
  "CMakeFiles/pdx_common.dir/binomial.cc.o"
  "CMakeFiles/pdx_common.dir/binomial.cc.o.d"
  "CMakeFiles/pdx_common.dir/histogram.cc.o"
  "CMakeFiles/pdx_common.dir/histogram.cc.o.d"
  "CMakeFiles/pdx_common.dir/logging.cc.o"
  "CMakeFiles/pdx_common.dir/logging.cc.o.d"
  "CMakeFiles/pdx_common.dir/normal.cc.o"
  "CMakeFiles/pdx_common.dir/normal.cc.o.d"
  "CMakeFiles/pdx_common.dir/obs.cc.o"
  "CMakeFiles/pdx_common.dir/obs.cc.o.d"
  "CMakeFiles/pdx_common.dir/rng.cc.o"
  "CMakeFiles/pdx_common.dir/rng.cc.o.d"
  "CMakeFiles/pdx_common.dir/running_stats.cc.o"
  "CMakeFiles/pdx_common.dir/running_stats.cc.o.d"
  "CMakeFiles/pdx_common.dir/status.cc.o"
  "CMakeFiles/pdx_common.dir/status.cc.o.d"
  "CMakeFiles/pdx_common.dir/string_util.cc.o"
  "CMakeFiles/pdx_common.dir/string_util.cc.o.d"
  "CMakeFiles/pdx_common.dir/thread_pool.cc.o"
  "CMakeFiles/pdx_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/pdx_common.dir/zipf.cc.o"
  "CMakeFiles/pdx_common.dir/zipf.cc.o.d"
  "libpdx_common.a"
  "libpdx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
