file(REMOVE_RECURSE
  "libpdx_common.a"
)
