# Empty dependencies file for pdx_common.
# This may be replaced when dependencies are built.
