file(REMOVE_RECURSE
  "CMakeFiles/pdx_optimizer.dir/candidate_gen.cc.o"
  "CMakeFiles/pdx_optimizer.dir/candidate_gen.cc.o.d"
  "CMakeFiles/pdx_optimizer.dir/cost_bounds.cc.o"
  "CMakeFiles/pdx_optimizer.dir/cost_bounds.cc.o.d"
  "CMakeFiles/pdx_optimizer.dir/cost_model.cc.o"
  "CMakeFiles/pdx_optimizer.dir/cost_model.cc.o.d"
  "CMakeFiles/pdx_optimizer.dir/physical_design.cc.o"
  "CMakeFiles/pdx_optimizer.dir/physical_design.cc.o.d"
  "CMakeFiles/pdx_optimizer.dir/relevance.cc.o"
  "CMakeFiles/pdx_optimizer.dir/relevance.cc.o.d"
  "CMakeFiles/pdx_optimizer.dir/serialization.cc.o"
  "CMakeFiles/pdx_optimizer.dir/serialization.cc.o.d"
  "CMakeFiles/pdx_optimizer.dir/what_if.cc.o"
  "CMakeFiles/pdx_optimizer.dir/what_if.cc.o.d"
  "libpdx_optimizer.a"
  "libpdx_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdx_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
