# Empty dependencies file for pdx_optimizer.
# This may be replaced when dependencies are built.
