
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/candidate_gen.cc" "src/optimizer/CMakeFiles/pdx_optimizer.dir/candidate_gen.cc.o" "gcc" "src/optimizer/CMakeFiles/pdx_optimizer.dir/candidate_gen.cc.o.d"
  "/root/repo/src/optimizer/cost_bounds.cc" "src/optimizer/CMakeFiles/pdx_optimizer.dir/cost_bounds.cc.o" "gcc" "src/optimizer/CMakeFiles/pdx_optimizer.dir/cost_bounds.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/optimizer/CMakeFiles/pdx_optimizer.dir/cost_model.cc.o" "gcc" "src/optimizer/CMakeFiles/pdx_optimizer.dir/cost_model.cc.o.d"
  "/root/repo/src/optimizer/physical_design.cc" "src/optimizer/CMakeFiles/pdx_optimizer.dir/physical_design.cc.o" "gcc" "src/optimizer/CMakeFiles/pdx_optimizer.dir/physical_design.cc.o.d"
  "/root/repo/src/optimizer/relevance.cc" "src/optimizer/CMakeFiles/pdx_optimizer.dir/relevance.cc.o" "gcc" "src/optimizer/CMakeFiles/pdx_optimizer.dir/relevance.cc.o.d"
  "/root/repo/src/optimizer/serialization.cc" "src/optimizer/CMakeFiles/pdx_optimizer.dir/serialization.cc.o" "gcc" "src/optimizer/CMakeFiles/pdx_optimizer.dir/serialization.cc.o.d"
  "/root/repo/src/optimizer/what_if.cc" "src/optimizer/CMakeFiles/pdx_optimizer.dir/what_if.cc.o" "gcc" "src/optimizer/CMakeFiles/pdx_optimizer.dir/what_if.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/pdx_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/catalog/CMakeFiles/pdx_catalog.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/pdx_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
