file(REMOVE_RECURSE
  "libpdx_optimizer.a"
)
