file(REMOVE_RECURSE
  "CMakeFiles/pdx_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/pdx_bench_common.dir/bench_common.cc.o.d"
  "libpdx_bench_common.a"
  "libpdx_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdx_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
