# Empty compiler generated dependencies file for pdx_bench_common.
# This may be replaced when dependencies are built.
