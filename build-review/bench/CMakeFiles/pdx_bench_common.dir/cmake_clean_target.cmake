file(REMOVE_RECURSE
  "libpdx_bench_common.a"
)
