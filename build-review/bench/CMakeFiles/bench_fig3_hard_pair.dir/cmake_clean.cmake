file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_hard_pair.dir/bench_fig3_hard_pair.cc.o"
  "CMakeFiles/bench_fig3_hard_pair.dir/bench_fig3_hard_pair.cc.o.d"
  "bench_fig3_hard_pair"
  "bench_fig3_hard_pair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_hard_pair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
