# Empty dependencies file for bench_fig3_hard_pair.
# This may be replaced when dependencies are built.
