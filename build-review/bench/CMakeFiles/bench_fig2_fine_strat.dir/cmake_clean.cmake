file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_fine_strat.dir/bench_fig2_fine_strat.cc.o"
  "CMakeFiles/bench_fig2_fine_strat.dir/bench_fig2_fine_strat.cc.o.d"
  "bench_fig2_fine_strat"
  "bench_fig2_fine_strat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_fine_strat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
