# Empty compiler generated dependencies file for bench_fig2_fine_strat.
# This may be replaced when dependencies are built.
