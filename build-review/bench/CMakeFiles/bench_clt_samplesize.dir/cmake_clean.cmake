file(REMOVE_RECURSE
  "CMakeFiles/bench_clt_samplesize.dir/bench_clt_samplesize.cc.o"
  "CMakeFiles/bench_clt_samplesize.dir/bench_clt_samplesize.cc.o.d"
  "bench_clt_samplesize"
  "bench_clt_samplesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clt_samplesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
