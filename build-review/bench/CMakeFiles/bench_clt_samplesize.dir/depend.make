# Empty dependencies file for bench_clt_samplesize.
# This may be replaced when dependencies are built.
