file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_tpcd_multi.dir/bench_table2_tpcd_multi.cc.o"
  "CMakeFiles/bench_table2_tpcd_multi.dir/bench_table2_tpcd_multi.cc.o.d"
  "bench_table2_tpcd_multi"
  "bench_table2_tpcd_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_tpcd_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
