# Empty dependencies file for bench_table2_tpcd_multi.
# This may be replaced when dependencies are built.
