
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig1_easy_pair.cc" "bench/CMakeFiles/bench_fig1_easy_pair.dir/bench_fig1_easy_pair.cc.o" "gcc" "bench/CMakeFiles/bench_fig1_easy_pair.dir/bench_fig1_easy_pair.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/bench/CMakeFiles/pdx_bench_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/tuner/CMakeFiles/pdx_tuner.dir/DependInfo.cmake"
  "/root/repo/build-review/src/core/CMakeFiles/pdx_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/compression/CMakeFiles/pdx_compression.dir/DependInfo.cmake"
  "/root/repo/build-review/src/optimizer/CMakeFiles/pdx_optimizer.dir/DependInfo.cmake"
  "/root/repo/build-review/src/workload/CMakeFiles/pdx_workload.dir/DependInfo.cmake"
  "/root/repo/build-review/src/catalog/CMakeFiles/pdx_catalog.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/pdx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
