# Empty dependencies file for bench_fig1_easy_pair.
# This may be replaced when dependencies are built.
