# Empty dependencies file for bench_ablation_overhead.
# This may be replaced when dependencies are built.
