file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_overhead.dir/bench_ablation_overhead.cc.o"
  "CMakeFiles/bench_ablation_overhead.dir/bench_ablation_overhead.cc.o.d"
  "bench_ablation_overhead"
  "bench_ablation_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
