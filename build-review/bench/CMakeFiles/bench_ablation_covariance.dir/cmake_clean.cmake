file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_covariance.dir/bench_ablation_covariance.cc.o"
  "CMakeFiles/bench_ablation_covariance.dir/bench_ablation_covariance.cc.o.d"
  "bench_ablation_covariance"
  "bench_ablation_covariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_covariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
