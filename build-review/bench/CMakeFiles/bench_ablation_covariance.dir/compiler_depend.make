# Empty compiler generated dependencies file for bench_ablation_covariance.
# This may be replaced when dependencies are built.
