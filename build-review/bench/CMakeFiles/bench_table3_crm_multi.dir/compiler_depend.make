# Empty compiler generated dependencies file for bench_table3_crm_multi.
# This may be replaced when dependencies are built.
