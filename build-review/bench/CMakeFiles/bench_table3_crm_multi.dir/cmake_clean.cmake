file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_crm_multi.dir/bench_table3_crm_multi.cc.o"
  "CMakeFiles/bench_table3_crm_multi.dir/bench_table3_crm_multi.cc.o.d"
  "bench_table3_crm_multi"
  "bench_table3_crm_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_crm_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
