# Empty compiler generated dependencies file for bench_ablation_elimination.
# This may be replaced when dependencies are built.
