file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_elimination.dir/bench_ablation_elimination.cc.o"
  "CMakeFiles/bench_ablation_elimination.dir/bench_ablation_elimination.cc.o.d"
  "bench_ablation_elimination"
  "bench_ablation_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
