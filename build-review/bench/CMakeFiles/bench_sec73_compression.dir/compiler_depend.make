# Empty compiler generated dependencies file for bench_sec73_compression.
# This may be replaced when dependencies are built.
