file(REMOVE_RECURSE
  "CMakeFiles/bench_sec73_compression.dir/bench_sec73_compression.cc.o"
  "CMakeFiles/bench_sec73_compression.dir/bench_sec73_compression.cc.o.d"
  "bench_sec73_compression"
  "bench_sec73_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec73_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
