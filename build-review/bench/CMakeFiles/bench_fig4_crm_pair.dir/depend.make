# Empty dependencies file for bench_fig4_crm_pair.
# This may be replaced when dependencies are built.
