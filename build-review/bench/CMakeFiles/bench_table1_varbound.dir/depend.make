# Empty dependencies file for bench_table1_varbound.
# This may be replaced when dependencies are built.
