file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_varbound.dir/bench_table1_varbound.cc.o"
  "CMakeFiles/bench_table1_varbound.dir/bench_table1_varbound.cc.o.d"
  "bench_table1_varbound"
  "bench_table1_varbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_varbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
