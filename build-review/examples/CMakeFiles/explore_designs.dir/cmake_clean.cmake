file(REMOVE_RECURSE
  "CMakeFiles/explore_designs.dir/explore_designs.cc.o"
  "CMakeFiles/explore_designs.dir/explore_designs.cc.o.d"
  "explore_designs"
  "explore_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
