# Empty dependencies file for explore_designs.
# This may be replaced when dependencies are built.
