file(REMOVE_RECURSE
  "CMakeFiles/pdx_tool.dir/pdx_tool.cc.o"
  "CMakeFiles/pdx_tool.dir/pdx_tool.cc.o.d"
  "pdx_tool"
  "pdx_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdx_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
