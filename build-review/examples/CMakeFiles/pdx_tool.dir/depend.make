# Empty dependencies file for pdx_tool.
# This may be replaced when dependencies are built.
