# Empty compiler generated dependencies file for validate_bounds.
# This may be replaced when dependencies are built.
