file(REMOVE_RECURSE
  "CMakeFiles/validate_bounds.dir/validate_bounds.cc.o"
  "CMakeFiles/validate_bounds.dir/validate_bounds.cc.o.d"
  "validate_bounds"
  "validate_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
