# Empty compiler generated dependencies file for tune_with_primitive.
# This may be replaced when dependencies are built.
