file(REMOVE_RECURSE
  "CMakeFiles/tune_with_primitive.dir/tune_with_primitive.cc.o"
  "CMakeFiles/tune_with_primitive.dir/tune_with_primitive.cc.o.d"
  "tune_with_primitive"
  "tune_with_primitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_with_primitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
